//! Zienkiewicz–Zhu recovery and Hessian-based metric construction.
//!
//! The feedback half of the adaptation loop: from a P1 solution (e.g.
//! the stream function of [`crate::solve_potential_flow`]) recover a
//! smoothed per-vertex gradient, apply the recovery twice for a
//! per-vertex Hessian, and turn the clamped absolute Hessian into the
//! anisotropic [`MetricField`] the next meshing cycle consumes as its
//! sizing. The recovered-minus-raw gradient gap is also the classic ZZ
//! a-posteriori error indicator ([`zz_error`]), whose equidistribution
//! across elements is the loop's convergence signal.
//!
//! Every routine iterates live triangles and vertices in index order and
//! accumulates per-vertex sums in one fixed pass, so the outputs are
//! bitwise deterministic for a given mesh — a requirement, since the
//! metric digests feed the pipeline's serial-vs-parallel oracle.

use adm_delaunay::mesh::Mesh;
use adm_geom::metric::{Metric2, MetricField};
use adm_geom::point::Vec2;

/// P1 gradient and area of one live triangle; `None` for degenerate
/// (zero or negative doubled area) triangles.
fn tri_gradient(mesh: &Mesh, u: &[f64], t: u32) -> Option<(f64, Vec2)> {
    let tri = mesh.tri(t as usize);
    let (a, b, c) = (
        mesh.vertex(tri[0] as usize),
        mesh.vertex(tri[1] as usize),
        mesh.vertex(tri[2] as usize),
    );
    let area2 = (b - a).cross(c - a);
    if area2 <= 0.0 {
        return None;
    }
    let (fa, fb, fc) = (u[tri[0] as usize], u[tri[1] as usize], u[tri[2] as usize]);
    let g = Vec2::new(
        (fa * (b.y - c.y) + fb * (c.y - a.y) + fc * (a.y - b.y)) / area2,
        (fa * (c.x - b.x) + fb * (a.x - c.x) + fc * (b.x - a.x)) / area2,
    );
    Some((0.5 * area2, g))
}

/// ZZ gradient recovery: per-vertex area-weighted average of the P1
/// gradients of the incident live triangles. Vertices touching no live
/// triangle recover the zero vector.
pub fn recover_gradient(mesh: &Mesh, u: &[f64]) -> Vec<Vec2> {
    let nv = mesh.num_vertices();
    assert_eq!(u.len(), nv, "field length must match vertex count");
    let mut acc = vec![Vec2::ZERO; nv];
    let mut w = vec![0.0f64; nv];
    for t in mesh.live_triangles() {
        let Some((area, g)) = tri_gradient(mesh, u, t) else {
            continue;
        };
        for &v in &mesh.tri(t as usize) {
            acc[v as usize] += g * area;
            w[v as usize] += area;
        }
    }
    for (a, &wi) in acc.iter_mut().zip(&w) {
        if wi > 0.0 {
            *a = *a * (1.0 / wi);
        }
    }
    acc
}

/// Recovered per-vertex Hessian `(h_xx, h_xy, h_yy)`: gradient recovery
/// applied to each component of the recovered gradient, off-diagonal
/// symmetrized. Second-order recovery on patches, first-order near
/// boundaries — exactly what a metric needs (magnitudes, not digits).
pub fn recover_hessian(mesh: &Mesh, u: &[f64]) -> Vec<[f64; 3]> {
    let g = recover_gradient(mesh, u);
    let gx: Vec<f64> = g.iter().map(|v| v.x).collect();
    let gy: Vec<f64> = g.iter().map(|v| v.y).collect();
    let hx = recover_gradient(mesh, &gx);
    let hy = recover_gradient(mesh, &gy);
    hx.iter()
        .zip(&hy)
        .map(|(rx, ry)| [rx.x, 0.5 * (rx.y + ry.x), ry.y])
        .collect()
}

/// The ZZ a-posteriori error estimate of one solve.
pub struct ErrorEstimate {
    /// `(triangle, eta_T)` for every live triangle, in id order.
    pub per_triangle: Vec<(u32, f64)>,
    /// Global estimate `sqrt(sum eta_T^2)`.
    pub total: f64,
    /// Mean element indicator.
    pub mean: f64,
    /// Largest element indicator.
    pub max: f64,
    /// Number of vertices referenced by live triangles (the solve's
    /// degree-of-freedom count before boundary elimination).
    pub dofs: usize,
}

impl ErrorEstimate {
    /// Equidistribution ratio `max / mean` (1.0 = perfectly
    /// equidistributed error; the adaptation loop drives this down).
    pub fn equidistribution(&self) -> f64 {
        if self.mean > 0.0 {
            self.max / self.mean
        } else {
            1.0
        }
    }

    /// Error per degree of freedom invested, the figure of merit of the
    /// Figure-16-style comparison: `total * sqrt(dofs)` is constant for
    /// an optimally graded mesh family (P1, energy norm, 2-D), so lower
    /// is strictly better mesh economy.
    pub fn error_per_dof(&self) -> f64 {
        self.total * (self.dofs as f64).sqrt()
    }
}

/// Zienkiewicz–Zhu error indicator: per element,
/// `eta_T^2 = area_T * |G*(T) - grad u_h|_T|^2` with `G*(T)` the mean of
/// the three recovered vertex gradients.
pub fn zz_error(mesh: &Mesh, u: &[f64]) -> ErrorEstimate {
    let g = recover_gradient(mesh, u);
    let mut per_triangle = Vec::new();
    let mut sum_sq = 0.0;
    let mut max = 0.0f64;
    let mut used = vec![false; mesh.num_vertices()];
    for t in mesh.live_triangles() {
        let Some((area, grad)) = tri_gradient(mesh, u, t) else {
            continue;
        };
        let tri = mesh.tri(t as usize);
        let mut star = Vec2::ZERO;
        for &v in &tri {
            star += g[v as usize];
            used[v as usize] = true;
        }
        star = star * (1.0 / 3.0);
        let diff = star - grad;
        let eta = (area * diff.norm_sq()).sqrt();
        sum_sq += eta * eta;
        max = max.max(eta);
        per_triangle.push((t, eta));
    }
    let n = per_triangle.len().max(1);
    let total = sum_sq.sqrt();
    let mean = per_triangle.iter().map(|&(_, e)| e).sum::<f64>() / n as f64;
    ErrorEstimate {
        per_triangle,
        total,
        mean,
        max,
        dofs: used.iter().filter(|&&b| b).count(),
    }
}

/// Controls for [`hessian_metric`].
#[derive(Debug, Clone, Copy)]
pub struct MetricParams {
    /// Interpolation-error budget: metric eigenvalues are
    /// `|lambda_H| / eps`. `None` picks the budget that halves the
    /// median per-vertex interpolation error of the current mesh — a
    /// self-scaling choice that roughly doubles resolution where the
    /// solution curves and coarsens where it does not.
    pub eps: Option<f64>,
    /// Smallest edge length the metric may demand.
    pub h_min: f64,
    /// Largest edge length the metric may demand.
    pub h_max: f64,
}

impl Default for MetricParams {
    fn default() -> Self {
        MetricParams {
            eps: None,
            h_min: 1e-6,
            h_max: 1e6,
        }
    }
}

/// Mean incident (live) edge length per vertex; 0.0 for unused vertices.
pub fn local_edge_length(mesh: &Mesh) -> Vec<f64> {
    let nv = mesh.num_vertices();
    let mut sum = vec![0.0f64; nv];
    let mut cnt = vec![0u32; nv];
    for t in mesh.live_triangles() {
        let tri = mesh.tri(t as usize);
        for i in 0..3 {
            let (a, b) = (tri[i], tri[(i + 1) % 3]);
            let d = mesh.vertex(a as usize).distance(mesh.vertex(b as usize));
            sum[a as usize] += d;
            cnt[a as usize] += 1;
            sum[b as usize] += d;
            cnt[b as usize] += 1;
        }
    }
    sum.iter()
        .zip(&cnt)
        .map(|(&s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
        .collect()
}

/// The self-scaling interpolation budget: half the median per-vertex
/// interpolation error `lambda_max(|H_v|) * h_v^2` over used vertices.
fn auto_eps_from(mesh: &Mesh, hess: &[[f64; 3]], used: &[bool]) -> f64 {
    let h_local = local_edge_length(mesh);
    let mut errs: Vec<f64> = Vec::new();
    for (v, h) in hess.iter().enumerate() {
        if !used[v] {
            continue;
        }
        let m = Metric2 {
            a: h[0],
            b: h[1],
            d: h[2],
        };
        let (l1, l2, _) = m.eigen();
        let lam = l1.abs().max(l2.abs());
        let e = lam * h_local[v] * h_local[v];
        if e.is_finite() && e > 0.0 {
            errs.push(e);
        }
    }
    if errs.is_empty() {
        return 1.0;
    }
    errs.sort_by(|a, b| a.total_cmp(b));
    0.5 * errs[errs.len() / 2]
}

/// The budget [`hessian_metric`] would pick for `eps: None` on this
/// mesh/solution pair. Exposed so an adaptation loop can resolve the
/// budget **once** (on its first mesh) and hold it fixed: re-picking it
/// per cycle re-halves the median error forever and never converges,
/// while a frozen budget turns the loop into a fixed-point iteration —
/// once the mesh satisfies `|H| h^2 <= eps` everywhere, later cycles
/// reproduce it instead of refining further.
pub fn auto_interpolation_eps(mesh: &Mesh, u: &[f64]) -> f64 {
    let hess = recover_hessian(mesh, u);
    let mut used = vec![false; mesh.num_vertices()];
    for t in mesh.live_triangles() {
        for &v in &mesh.tri(t as usize) {
            used[v as usize] = true;
        }
    }
    let eps = auto_eps_from(mesh, &hess, &used);
    if eps.is_finite() && eps > 0.0 {
        eps
    } else {
        1.0
    }
}

/// Builds the anisotropic metric field from the recovered Hessian of
/// `u`: per used vertex, `M = R diag(clamp(|lambda_i|/eps)) R^T` with
/// eigenvalues clamped into `[1/h_max^2, 1/h_min^2]`. Only vertices
/// referenced by live triangles become samples, so carved or orphaned
/// vertices never pollute the field's nearest-neighbor interpolation.
pub fn hessian_metric(mesh: &Mesh, u: &[f64], params: &MetricParams) -> MetricField {
    let hess = recover_hessian(mesh, u);
    let mut used = vec![false; mesh.num_vertices()];
    for t in mesh.live_triangles() {
        for &v in &mesh.tri(t as usize) {
            used[v as usize] = true;
        }
    }
    let eps = params
        .eps
        .unwrap_or_else(|| auto_eps_from(mesh, &hess, &used));
    let eps = if eps.is_finite() && eps > 0.0 {
        eps
    } else {
        1.0
    };
    let mut pts = Vec::new();
    let mut metrics = Vec::new();
    for (v, h) in hess.iter().enumerate() {
        if !used[v] {
            continue;
        }
        pts.push(mesh.vertex(v));
        metrics.push(Metric2::from_hessian(
            h[0],
            h[1],
            h[2],
            eps,
            params.h_min,
            params.h_max,
        ));
    }
    MetricField::new(pts, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adm_delaunay::mesh::Mesh;
    use adm_geom::point::Point2;

    /// Structured n x n unit-square grid split into 2n^2 CCW triangles.
    pub(crate) fn grid_mesh(n: usize) -> Mesh {
        let mut pts = Vec::with_capacity((n + 1) * (n + 1));
        for j in 0..=n {
            for i in 0..=n {
                pts.push(Point2::new(i as f64 / n as f64, j as f64 / n as f64));
            }
        }
        let at = |i: usize, j: usize| (j * (n + 1) + i) as u32;
        let mut tris = Vec::with_capacity(2 * n * n);
        for j in 0..n {
            for i in 0..n {
                tris.push([at(i, j), at(i + 1, j), at(i + 1, j + 1)]);
                tris.push([at(i, j), at(i + 1, j + 1), at(i, j + 1)]);
            }
        }
        Mesh::from_triangles(pts, tris)
    }

    fn field(mesh: &Mesh, f: impl Fn(Point2) -> f64) -> Vec<f64> {
        (0..mesh.num_vertices())
            .map(|v| f(mesh.vertex(v)))
            .collect()
    }

    #[test]
    fn linear_field_recovers_exact_gradient() {
        let mesh = grid_mesh(8);
        let u = field(&mesh, |p| 3.0 * p.x - 2.0 * p.y + 1.0);
        let g = recover_gradient(&mesh, &u);
        for (v, gv) in g.iter().enumerate() {
            if mesh.triangles_around_vertex(v as u32).is_empty() {
                continue;
            }
            assert!((gv.x - 3.0).abs() < 1e-10, "gx at {v}: {}", gv.x);
            assert!((gv.y + 2.0).abs() < 1e-10, "gy at {v}: {}", gv.y);
        }
        // The ZZ estimate of an exactly-representable field vanishes.
        let est = zz_error(&mesh, &u);
        assert!(est.total < 1e-10, "total {}", est.total);
    }

    #[test]
    fn quadratic_field_recovers_hessian_magnitude() {
        let mesh = grid_mesh(16);
        let u = field(&mesh, |p| p.x * p.x + 0.5 * p.y * p.y);
        let h = recover_hessian(&mesh, &u);
        // Check interior vertices only (boundary patches are one-sided).
        for (v, hv) in h.iter().enumerate() {
            let p = mesh.vertex(v);
            if p.x < 0.2 || p.x > 0.8 || p.y < 0.2 || p.y > 0.8 {
                continue;
            }
            assert!((hv[0] - 2.0).abs() < 0.2, "hxx at {v}: {}", hv[0]);
            assert!(hv[1].abs() < 0.2, "hxy at {v}: {}", hv[1]);
            assert!((hv[2] - 1.0).abs() < 0.2, "hyy at {v}: {}", hv[2]);
        }
    }

    #[test]
    fn zz_error_decreases_under_refinement() {
        let u8_ = |m: &Mesh| field(m, |p| (3.0 * p.x).sin() * (2.0 * p.y).cos());
        let coarse = grid_mesh(8);
        let fine = grid_mesh(16);
        let e_coarse = zz_error(&coarse, &u8_(&coarse));
        let e_fine = zz_error(&fine, &u8_(&fine));
        assert!(
            e_fine.total < e_coarse.total / 1.5,
            "coarse {} fine {}",
            e_coarse.total,
            e_fine.total
        );
        assert!(e_fine.dofs > e_coarse.dofs);
        assert!(e_coarse.equidistribution() >= 1.0);
    }

    #[test]
    fn hessian_metric_is_spd_and_windowed() {
        let mesh = grid_mesh(12);
        let u = field(&mesh, |p| (4.0 * p.x).exp() * (3.0 * p.y).sin());
        let params = MetricParams {
            eps: Some(0.01),
            h_min: 0.02,
            h_max: 2.0,
        };
        let f = hessian_metric(&mesh, &u, &params);
        assert_eq!(f.len(), mesh.num_vertices());
        for m in f.metrics() {
            assert!(m.is_spd());
            let h_lo = m.h_min_dir();
            let h_hi = m.h_max_dir();
            assert!(h_lo >= params.h_min - 1e-12 && h_hi <= params.h_max + 1e-9);
        }
    }

    #[test]
    fn auto_eps_refines_where_curvature_concentrates() {
        let mesh = grid_mesh(20);
        // Curvature concentrated near x = 0: h demanded there must be
        // smaller than in the flat far half.
        let u = field(&mesh, |p| (-20.0 * p.x).exp());
        let f = hessian_metric(&mesh, &u, &MetricParams::default());
        let h_near = f.h_at(Point2::new(0.05, 0.5));
        let h_far = f.h_at(Point2::new(0.95, 0.5));
        assert!(
            h_near < 0.5 * h_far,
            "near {h_near} not finer than far {h_far}"
        );
    }
}
