//! Potential flow around airfoil meshes (the Figures 14/15 substitute).
//!
//! Solves the Laplace equation for the stream function `psi`: far-field
//! Dirichlet values impose a uniform free stream at angle of attack
//! `alpha`; the airfoil surface is the `psi = 0` streamline. Velocities
//! are the rotated gradient `(d psi/dy, -d psi/dx)` per triangle, and the
//! pressure coefficient follows from Bernoulli: `Cp = 1 - |v|^2 / U^2`.
//! This yields the same qualitative fields the paper renders with FUN3D —
//! stagnation points, suction peaks, gap acceleration — on our meshes.

use crate::fem::{assemble, Dirichlet};
use crate::solve::{cg, CgOptions};
use adm_delaunay::mesh::{Mesh, NIL};
use adm_geom::point::{Point2, Vec2};
use std::io::{self, Write};

/// Potential-flow inputs.
#[derive(Debug, Clone, Copy)]
pub struct FlowConditions {
    /// Free-stream speed.
    pub u_inf: f64,
    /// Angle of attack in degrees.
    pub alpha_deg: f64,
    /// Free-stream Mach number (only used to scale the reported "Mach"
    /// field: `M = M_inf * |v| / U_inf`).
    pub mach_inf: f64,
}

impl Default for FlowConditions {
    fn default() -> Self {
        FlowConditions {
            u_inf: 1.0,
            alpha_deg: 5.0,
            mach_inf: 0.3,
        }
    }
}

/// Computed flow solution.
pub struct FlowSolution {
    /// Stream function per vertex.
    pub psi: Vec<f64>,
    /// Velocity per live triangle (parallel to `triangles` ids).
    pub velocity: Vec<(u32, Vec2)>,
    /// Pressure coefficient per live triangle.
    pub cp: Vec<(u32, f64)>,
    /// Local Mach number per live triangle.
    pub mach: Vec<(u32, f64)>,
    /// Solver residual history.
    pub residuals: Vec<f64>,
}

/// Identifies boundary vertices: far-field vs body from the bounding box
/// (body loops are strictly inside the domain box).
fn classify_boundaries(mesh: &Mesh) -> (Vec<u32>, Vec<u32>) {
    let mut bmin = Point2::new(f64::INFINITY, f64::INFINITY);
    let mut bmax = Point2::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
    for i in 0..mesh.num_vertices() {
        let v = mesh.vertex(i);
        bmin = bmin.min(v);
        bmax = bmax.max(v);
    }
    let eps = 1e-9 * (bmax.x - bmin.x).max(bmax.y - bmin.y);
    let mut far = Vec::new();
    let mut body = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for t in mesh.live_triangles() {
        for i in 0..3u8 {
            if mesh.neighbor(t as usize, i as usize) == NIL {
                let (a, b) = mesh.edge_vertices(t, i);
                for v in [a, b] {
                    if !seen.insert(v) {
                        continue;
                    }
                    let p = mesh.vertex(v as usize);
                    let on_box = (p.x - bmin.x).abs() < eps
                        || (p.x - bmax.x).abs() < eps
                        || (p.y - bmin.y).abs() < eps
                        || (p.y - bmax.y).abs() < eps;
                    if on_box {
                        far.push(v);
                    } else {
                        body.push(v);
                    }
                }
            }
        }
    }
    (far, body)
}

/// Solves potential flow on `mesh`.
pub fn solve_potential_flow(mesh: &Mesh, cond: &FlowConditions) -> FlowSolution {
    let alpha = cond.alpha_deg.to_radians();
    let (ca, sa) = (alpha.cos(), alpha.sin());
    // Free-stream stream function: psi = U (y cos a - x sin a).
    let psi_inf = |p: Point2| cond.u_inf * (p.y * ca - p.x * sa);

    let (far, body) = classify_boundaries(mesh);
    let mut bc = Dirichlet::default();
    for v in far {
        bc.fix(v, psi_inf(mesh.vertex(v as usize)));
    }
    // Body streamline: psi = psi_inf at the body reference point keeps
    // zero net circulation; use the mean free-stream value over the body.
    if !body.is_empty() {
        let mean: f64 = body
            .iter()
            .map(|&v| psi_inf(mesh.vertex(v as usize)))
            .sum::<f64>()
            / body.len() as f64;
        for v in &body {
            bc.fix(*v, mean);
        }
    }

    let sys = assemble(mesh, Vec2::ZERO, |_| 0.0, &bc);
    let (u_free, residuals) = cg(
        &sys.matrix,
        &sys.rhs,
        &CgOptions {
            tol: 1e-10,
            jacobi_precond: true,
            ..Default::default()
        },
    );
    let psi = sys.expand(&u_free, &bc, mesh.num_vertices());

    // Per-triangle velocity from the P1 gradient: v = (d psi/dy, -d psi/dx).
    let mut velocity = Vec::new();
    let mut cp = Vec::new();
    let mut mach = Vec::new();
    for t in mesh.live_triangles() {
        let tri = mesh.tri(t as usize);
        let (a, b, c) = (
            mesh.vertex(tri[0] as usize),
            mesh.vertex(tri[1] as usize),
            mesh.vertex(tri[2] as usize),
        );
        let area2 = (b - a).cross(c - a);
        if area2 <= 0.0 {
            continue;
        }
        let (fa, fb, fc) = (
            psi[tri[0] as usize],
            psi[tri[1] as usize],
            psi[tri[2] as usize],
        );
        // grad psi = sum f_i * grad lambda_i.
        let g = Vec2::new(
            (fa * (b.y - c.y) + fb * (c.y - a.y) + fc * (a.y - b.y)) / area2,
            (fa * (c.x - b.x) + fb * (a.x - c.x) + fc * (b.x - a.x)) / area2,
        );
        let v = Vec2::new(g.y, -g.x);
        let speed = v.norm();
        velocity.push((t, v));
        cp.push((t, 1.0 - (speed / cond.u_inf).powi(2)));
        mach.push((t, cond.mach_inf * speed / cond.u_inf));
    }
    FlowSolution {
        psi,
        velocity,
        cp,
        mach,
        residuals,
    }
}

/// Renders a per-triangle scalar field as a colored SVG (blue = low,
/// red = high), for the Figure 14/15-style pictures.
pub fn write_field_svg<W: Write>(
    mesh: &Mesh,
    field: &[(u32, f64)],
    w: &mut W,
    width: f64,
    clip: Option<(Point2, Point2)>,
) -> io::Result<()> {
    let (mut min, mut max) = match clip {
        Some((a, b)) => (a, b),
        None => {
            let mut mn = Point2::new(f64::INFINITY, f64::INFINITY);
            let mut mx = Point2::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
            for i in 0..mesh.num_vertices() {
                let v = mesh.vertex(i);
                mn = mn.min(v);
                mx = mx.max(v);
            }
            (mn, mx)
        }
    };
    if min.x >= max.x || min.y >= max.y {
        std::mem::swap(&mut min, &mut max);
    }
    let scale = width / (max.x - min.x);
    let height = (max.y - min.y) * scale;
    let (mut fmin, mut fmax) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(_, f) in field {
        fmin = fmin.min(f);
        fmax = fmax.max(f);
    }
    let span = (fmax - fmin).max(1e-300);
    writeln!(
        w,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width:.0}\" height=\"{height:.0}\" viewBox=\"0 0 {width:.2} {height:.2}\">"
    )?;
    let tx = |p: Point2| ((p.x - min.x) * scale, (max.y - p.y) * scale);
    for &(t, f) in field {
        let tri = mesh.tri(t as usize);
        let (a, b, c) = (
            mesh.vertex(tri[0] as usize),
            mesh.vertex(tri[1] as usize),
            mesh.vertex(tri[2] as usize),
        );
        // Skip triangles fully outside the clip window.
        let inside = [a, b, c]
            .iter()
            .any(|p| p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y);
        if !inside {
            continue;
        }
        let u = ((f - fmin) / span).clamp(0.0, 1.0);
        let r = (255.0 * u) as u8;
        let bcol = (255.0 * (1.0 - u)) as u8;
        let g = (128.0 * (1.0 - (2.0 * u - 1.0).abs())) as u8;
        let (x0, y0) = tx(a);
        let (x1, y1) = tx(b);
        let (x2, y2) = tx(c);
        writeln!(
            w,
            "<path d=\"M{x0:.2} {y0:.2} L{x1:.2} {y1:.2} L{x2:.2} {y2:.2} Z\" fill=\"rgb({r},{g},{bcol})\" stroke=\"none\"/>"
        )?;
    }
    writeln!(w, "</svg>")
}

#[cfg(test)]
mod tests {
    use super::*;
    use adm_delaunay::cdt::{carve, constrained_delaunay};
    use adm_delaunay::refine::{refine, RefineParams};

    /// Square channel with a square "body" hole in the middle.
    fn channel_mesh() -> Mesh {
        let p = |x: f64, y: f64| Point2::new(x, y);
        let pts = vec![
            p(-4.0, -4.0),
            p(4.0, -4.0),
            p(4.0, 4.0),
            p(-4.0, 4.0),
            p(-0.5, -0.2),
            p(0.5, -0.2),
            p(0.5, 0.2),
            p(-0.5, 0.2),
        ];
        let segs = [
            (0u32, 1u32),
            (1, 2),
            (2, 3),
            (3, 0),
            (4, 5),
            (5, 6),
            (6, 7),
            (7, 4),
        ];
        let (mut mesh, _) = constrained_delaunay(&pts, &segs, false).unwrap();
        carve(&mut mesh, &[p(0.0, 0.0)]);
        refine(
            &mut mesh,
            None,
            &RefineParams {
                max_area: Some(0.05),
                ..Default::default()
            },
        );
        mesh
    }

    #[test]
    fn boundary_classification() {
        let mesh = channel_mesh();
        let (far, body) = classify_boundaries(&mesh);
        assert!(!far.is_empty());
        assert!(!body.is_empty());
        for &v in &far {
            let p = mesh.vertex(v as usize);
            assert!(p.x.abs() > 3.99 || p.y.abs() > 3.99);
        }
        for &v in &body {
            let p = mesh.vertex(v as usize);
            assert!(p.x.abs() < 1.0 && p.y.abs() < 1.0);
        }
    }

    #[test]
    fn uniform_flow_without_body_recovers_free_stream() {
        // No hole: psi must be exactly the free-stream field and velocity
        // uniform.
        let p = |x: f64, y: f64| Point2::new(x, y);
        let pts = vec![p(0.0, 0.0), p(2.0, 0.0), p(2.0, 1.0), p(0.0, 1.0)];
        let segs = [(0u32, 1u32), (1, 2), (2, 3), (3, 0)];
        let (mut mesh, _) = constrained_delaunay(&pts, &segs, false).unwrap();
        carve(&mut mesh, &[]);
        refine(
            &mut mesh,
            None,
            &RefineParams {
                max_area: Some(0.02),
                ..Default::default()
            },
        );
        let cond = FlowConditions {
            u_inf: 2.0,
            alpha_deg: 0.0,
            mach_inf: 0.3,
        };
        let sol = solve_potential_flow(&mesh, &cond);
        for &(_, v) in &sol.velocity {
            assert!((v.x - 2.0).abs() < 1e-6, "vx {}", v.x);
            assert!(v.y.abs() < 1e-6, "vy {}", v.y);
        }
        // Cp of the free stream is 0 everywhere.
        for &(_, c) in &sol.cp {
            assert!(c.abs() < 1e-6);
        }
    }

    #[test]
    fn body_creates_stagnation_and_acceleration() {
        let mesh = channel_mesh();
        let sol = solve_potential_flow(&mesh, &FlowConditions::default());
        // Somewhere the flow stagnates (low speed) and somewhere it
        // accelerates past the free stream.
        let speeds: Vec<f64> = sol.velocity.iter().map(|&(_, v)| v.norm()).collect();
        let vmin = speeds.iter().cloned().fold(f64::INFINITY, f64::min);
        let vmax = speeds.iter().cloned().fold(0.0, f64::max);
        assert!(vmin < 0.35, "no stagnation region: min speed {vmin}");
        assert!(vmax > 1.1, "no acceleration: max speed {vmax}");
        // Cp bounded above by 1 (stagnation).
        for &(_, c) in &sol.cp {
            assert!(c <= 1.0 + 1e-9);
        }
        assert!(sol.residuals.last().unwrap() < &1e-9);
    }

    #[test]
    fn field_svg_renders() {
        let mesh = channel_mesh();
        let sol = solve_potential_flow(&mesh, &FlowConditions::default());
        let mut buf = Vec::new();
        write_field_svg(&mesh, &sol.cp, &mut buf, 400.0, None).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("rgb("));
        assert!(s.matches("<path").count() > 100);
    }
}
