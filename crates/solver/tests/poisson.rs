//! Convergence-rate and metric-safety tests for the solver stack.
//!
//! The adaptation loop trusts two things from this crate: that the
//! P1/CG combination converges at second order on a smooth problem (so
//! error-per-DoF comparisons across meshes mean something), and that
//! Hessian-recovered metrics are always SPD after clamping (so sizing
//! queries never divide by a non-positive eigenvalue).

use adm_delaunay::mesh::Mesh;
use adm_geom::point::{Point2, Vec2};
use adm_solver::{assemble, cg, dirichlet_on_boundary, hessian_metric, CgOptions, MetricParams};
use proptest::prelude::*;
use std::f64::consts::PI;

/// Structured unit-square grid: `(n+1)^2` vertices, `2 n^2` CCW
/// triangles. A regular family, so the observed convergence order is
/// clean.
fn grid_mesh(n: usize) -> Mesh {
    let m = n + 1;
    let mut pts = Vec::with_capacity(m * m);
    for j in 0..m {
        for i in 0..m {
            pts.push(Point2::new(i as f64 / n as f64, j as f64 / n as f64));
        }
    }
    let at = |i: usize, j: usize| (j * m + i) as u32;
    let mut tris = Vec::with_capacity(2 * n * n);
    for j in 0..n {
        for i in 0..n {
            let (v00, v10, v01, v11) = (at(i, j), at(i + 1, j), at(i, j + 1), at(i + 1, j + 1));
            tris.push([v00, v10, v11]);
            tris.push([v00, v11, v01]);
        }
    }
    Mesh::from_triangles(pts, tris)
}

/// Solves `-lap(u) = f` with homogeneous Dirichlet data on `grid_mesh(n)`
/// and returns the discrete L2 error against the manufactured solution.
fn poisson_l2_error(n: usize) -> f64 {
    let exact = |p: Point2| (PI * p.x).sin() * (PI * p.y).sin();
    let rhs = |p: Point2| 2.0 * PI * PI * (PI * p.x).sin() * (PI * p.y).sin();
    let mesh = grid_mesh(n);
    let bc = dirichlet_on_boundary(&mesh, |_| 0.0);
    let sys = assemble(&mesh, Vec2::ZERO, rhs, &bc);
    let (u, hist) = cg(
        &sys.matrix,
        &sys.rhs,
        &CgOptions {
            tol: 1e-12,
            ..Default::default()
        },
    );
    assert!(
        hist.last().unwrap() <= &1e-12,
        "CG did not converge on n={n}"
    );
    let full = sys.expand(&u, &bc, mesh.num_vertices());
    // Vertex-lumped L2 norm: each interior vertex owns ~1/n^2 of area.
    let h2 = 1.0 / (n as f64 * n as f64);
    let sum: f64 = full
        .iter()
        .enumerate()
        .map(|(v, &val)| {
            let d = val - exact(mesh.vertex(v));
            d * d * h2
        })
        .sum();
    sum.sqrt()
}

/// CG + P1 on the analytic Poisson problem converges at second order:
/// halving h divides the L2 error by ~4. Assert the observed order on
/// two successive halvings stays in [1.7, 2.5].
#[test]
fn poisson_on_structured_grid_converges_at_second_order() {
    let errs: Vec<f64> = [8usize, 16, 32]
        .iter()
        .map(|&n| poisson_l2_error(n))
        .collect();
    for w in errs.windows(2) {
        let order = (w[0] / w[1]).log2();
        assert!(
            (1.7..=2.5).contains(&order),
            "observed order {order:.2} outside [1.7, 2.5]; errors {errs:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Hessian-recovered metrics are SPD after clamping for *any* vertex
    /// field — including wild oscillations, flat fields (zero Hessian),
    /// and huge magnitudes — and their eigenvalues respect the clamps.
    #[test]
    fn recovered_metric_is_always_spd(
        coeffs in prop::collection::vec(-1e3f64..1e3, 6),
        freq in 0.5f64..20.0,
        eps_raw in -1.0f64..1e2,
    ) {
        // Negative draws mean "no explicit eps" (auto selection).
        let eps = (eps_raw > 0.0).then_some(eps_raw.max(1e-6));
        let mesh = grid_mesh(8);
        let u: Vec<f64> = (0..mesh.num_vertices())
            .map(|v| {
                let p = mesh.vertex(v);
                coeffs[0]
                    + coeffs[1] * p.x
                    + coeffs[2] * p.y
                    + coeffs[3] * p.x * p.y
                    + coeffs[4] * (freq * p.x).sin()
                    + coeffs[5] * (freq * p.y).cos()
            })
            .collect();
        let params = MetricParams { eps, h_min: 1e-3, h_max: 1e3 };
        let field = hessian_metric(&mesh, &u, &params);
        let lo = 1.0 / (params.h_max * params.h_max);
        let hi = 1.0 / (params.h_min * params.h_min);
        for m in field.metrics() {
            prop_assert!(m.is_spd(), "not SPD: {m:?}");
            let (l1, l2, _) = m.eigen();
            for l in [l1, l2] {
                prop_assert!(
                    l >= lo * 0.999 && l <= hi * 1.001,
                    "eigenvalue {l} outside clamp [{lo}, {hi}]"
                );
            }
        }
    }
}
