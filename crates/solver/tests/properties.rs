//! Property-based tests for the sparse algebra and FEM layers.

use adm_solver::{cg, jacobi, CgOptions, Csr};
use proptest::prelude::*;

/// Random diagonally-dominant SPD matrix in triplet form.
fn spd_system(n: usize, seed: u64) -> (Csr, Vec<f64>) {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut t: Vec<(u32, u32, f64)> = Vec::new();
    let mut row_abs = vec![0.0f64; n];
    for i in 0..n {
        // A few symmetric off-diagonals.
        for _ in 0..3 {
            let j = rng.gen_range(0..n);
            if j == i {
                continue;
            }
            let v: f64 = rng.gen_range(-1.0..1.0);
            t.push((i as u32, j as u32, v));
            t.push((j as u32, i as u32, v));
            row_abs[i] += v.abs();
            row_abs[j] += v.abs();
        }
    }
    for (i, &ra) in row_abs.iter().enumerate() {
        t.push((i as u32, i as u32, ra + 1.0 + rng.gen_range(0.0..2.0)));
    }
    let a = Csr::from_triplets(n, n, &t);
    let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    (a, b)
}

/// Dense reference multiply.
fn dense_mul(a: &Csr, x: &[f64]) -> Vec<f64> {
    let mut y = vec![0.0; a.nrows()];
    for (r, yr) in y.iter_mut().enumerate() {
        for (c, xc) in x.iter().enumerate() {
            *yr += a.get(r, c) * xc;
        }
    }
    y
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// CSR SpMV matches the dense reference on random triplet matrices
    /// (with duplicate entries).
    #[test]
    fn spmv_matches_dense(
        n in 2usize..20,
        triplets in prop::collection::vec((0u32..20, 0u32..20, -5.0f64..5.0), 1..80),
        x in prop::collection::vec(-3.0f64..3.0, 20),
    ) {
        let t: Vec<(u32, u32, f64)> = triplets
            .into_iter()
            .map(|(r, c, v)| (r % n as u32, c % n as u32, v))
            .collect();
        let a = Csr::from_triplets(n, n, &t);
        let x = &x[..n];
        let mut y = vec![0.0; n];
        a.mul_vec(x, &mut y);
        let want = dense_mul(&a, x);
        for (got, want) in y.iter().zip(&want) {
            prop_assert!((got - want).abs() < 1e-9);
        }
    }

    /// CG solves every diagonally-dominant SPD system to tolerance, and
    /// the residual history honestly reports the final residual.
    #[test]
    fn cg_solves_spd(n in 4usize..60, seed in 0u64..1000) {
        let (a, b) = spd_system(n, seed);
        let (x, hist) = cg(&a, &b, &CgOptions { tol: 1e-10, ..Default::default() });
        prop_assert!(hist.last().unwrap() <= &1e-10);
        let mut ax = vec![0.0; n];
        a.mul_vec(&x, &mut ax);
        let norm_b = b.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-300);
        let res = ax
            .iter()
            .zip(&b)
            .map(|(p, q)| (p - q) * (p - q))
            .sum::<f64>()
            .sqrt()
            / norm_b;
        prop_assert!(res < 1e-8, "actual residual {res}");
    }

    /// Jacobi converges on diagonally-dominant systems and agrees with CG.
    #[test]
    fn jacobi_agrees_with_cg(n in 4usize..30, seed in 0u64..200) {
        let (a, b) = spd_system(n, seed);
        let (x_cg, _) = cg(&a, &b, &CgOptions { tol: 1e-12, ..Default::default() });
        let (x_j, hist) = jacobi(&a, &b, 1e-12, 500_000);
        prop_assert!(hist.last().unwrap() <= &1e-12, "jacobi stalled");
        for (p, q) in x_cg.iter().zip(&x_j) {
            prop_assert!((p - q).abs() < 1e-6, "{p} vs {q}");
        }
    }

    /// Preconditioned CG never needs more iterations than the tolerance
    /// implies on the identity.
    #[test]
    fn cg_on_identity_converges_immediately(n in 2usize..40) {
        let t: Vec<(u32, u32, f64)> = (0..n as u32).map(|i| (i, i, 1.0)).collect();
        let a = Csr::from_triplets(n, n, &t);
        let b = vec![1.0; n];
        let (x, hist) = cg(&a, &b, &CgOptions::default());
        prop_assert!(hist.len() <= 3);
        for v in &x {
            prop_assert!((v - 1.0).abs() < 1e-12);
        }
    }
}
