//! Property-based tests for the geometry substrate.

use adm_geom::aabb::Aabb;
use adm_geom::adt::Adt;
use adm_geom::hull::{convex_hull, lower_hull_sorted};
use adm_geom::point::Point2;
use adm_geom::predicates::{incircle, orient2d};
use adm_geom::segment::{SegIntersection, Segment};
use proptest::prelude::*;

fn coord() -> impl Strategy<Value = f64> {
    prop_oneof![
        -100.0f64..100.0,
        // Small-magnitude values stress the predicate filters.
        -1e-6f64..1e-6,
    ]
}

fn point() -> impl Strategy<Value = Point2> {
    (coord(), coord()).prop_map(|(x, y)| Point2::new(x, y))
}

fn segment() -> impl Strategy<Value = Segment> {
    (point(), point()).prop_map(|(a, b)| Segment::new(a, b))
}

proptest! {
    /// orient2d is antisymmetric under swapping two arguments.
    #[test]
    fn orient_antisymmetric(a in point(), b in point(), c in point()) {
        let d1 = orient2d(a, b, c);
        let d2 = orient2d(b, a, c);
        prop_assert_eq!(d1 > 0.0, d2 < 0.0);
        prop_assert_eq!(d1 == 0.0, d2 == 0.0);
    }

    /// orient2d is invariant under cyclic rotation of its arguments.
    #[test]
    fn orient_cyclic(a in point(), b in point(), c in point()) {
        let sign = |v: f64| if v > 0.0 { 1 } else if v < 0.0 { -1 } else { 0 };
        let d1 = orient2d(a, b, c);
        let d2 = orient2d(b, c, a);
        let d3 = orient2d(c, a, b);
        prop_assert_eq!(sign(d1), sign(d2));
        prop_assert_eq!(sign(d2), sign(d3));
    }

    /// incircle sign flips when the triangle orientation flips.
    #[test]
    fn incircle_orientation_antisymmetry(a in point(), b in point(), c in point(), d in point()) {
        let s1 = incircle(a, b, c, d);
        let s2 = incircle(a, c, b, d);
        prop_assert_eq!(s1 > 0.0, s2 < 0.0);
        prop_assert_eq!(s1 == 0.0, s2 == 0.0);
    }

    /// Segment intersection is symmetric.
    #[test]
    fn segment_intersection_symmetric(s in segment(), t in segment()) {
        prop_assert_eq!(s.intersects(&t), t.intersects(&s));
        prop_assert_eq!(s.properly_intersects(&t), t.properly_intersects(&s));
    }

    /// If an intersection point is constructed, it lies (to tolerance) on
    /// both segments' lines and inside both extent boxes.
    #[test]
    fn constructed_intersection_is_on_both(s in segment(), t in segment()) {
        if let SegIntersection::Point(p) = s.intersection(&t) {
            let tol = 1e-6 * (1.0 + s.length().max(t.length()));
            prop_assert!(s.distance_to_point(p) <= tol);
            prop_assert!(t.distance_to_point(p) <= tol);
        }
    }

    /// Cohen–Sutherland agrees with the exact definition of segment/box
    /// intersection whenever the answer is robustly decidable: a clipped
    /// result must lie inside the (slightly inflated) box, and a reject
    /// must be consistent with both endpoints plus midpoint sampling.
    #[test]
    fn clip_result_inside_box(s in segment(), a in point(), b in point()) {
        let bx = Aabb::new(a, b);
        match bx.clip_segment(&s) {
            Some(c) => {
                let infl = bx.inflated(1e-9 * (1.0 + bx.width() + bx.height()));
                prop_assert!(infl.contains(c.a));
                prop_assert!(infl.contains(c.b));
            }
            None => {
                // Sample the segment; no sample may be strictly inside.
                for k in 0..=16 {
                    let p = s.at(k as f64 / 16.0);
                    let shrunk = Aabb::new(bx.min, bx.max);
                    prop_assert!(
                        !(p.x > shrunk.min.x && p.x < shrunk.max.x
                          && p.y > shrunk.min.y && p.y < shrunk.max.y),
                        "rejected segment has interior sample {p:?}"
                    );
                }
            }
        }
    }

    /// ADT query returns exactly the brute-force extent-box intersections.
    #[test]
    fn adt_matches_brute_force(segs in prop::collection::vec(segment(), 1..60), q in segment()) {
        let mut domain = Aabb::empty();
        for s in &segs {
            domain.expand(s.a);
            domain.expand(s.b);
        }
        domain.expand(q.a);
        domain.expand(q.b);
        let mut adt = Adt::for_domain(&domain);
        for (i, s) in segs.iter().enumerate() {
            adt.insert_segment(s, i);
        }
        let mut got = vec![];
        adt.query_segment(&q, &mut got);
        got.sort_unstable();
        let qb = Aabb::of_segment(&q);
        let want: Vec<usize> = segs
            .iter()
            .enumerate()
            .filter(|(_, s)| Aabb::of_segment(s).intersects(&qb))
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(got, want);
    }

    /// The lower hull of sorted points supports the point set from below
    /// and is convex.
    #[test]
    fn lower_hull_supports(mut pts in prop::collection::vec(point(), 3..80)) {
        pts.sort_by(|a, b| a.lex_cmp(*b));
        let h = lower_hull_sorted(&pts);
        prop_assert!(h.len() >= 2 || pts.iter().all(|p| *p == pts[0]));
        for w in h.windows(3) {
            prop_assert!(orient2d(w[0], w[1], w[2]) > 0.0);
        }
        for w in h.windows(2) {
            for &p in &pts {
                prop_assert!(orient2d(w[0], w[1], p) >= 0.0);
            }
        }
    }

    /// Every input point lies inside or on the convex hull.
    #[test]
    fn hull_contains_all_points(pts in prop::collection::vec(point(), 3..60)) {
        let h = convex_hull(&pts);
        if h.len() >= 3 {
            for &p in &pts {
                for i in 0..h.len() {
                    let a = h[i];
                    let b = h[(i + 1) % h.len()];
                    prop_assert!(orient2d(a, b, p) >= 0.0, "point outside hull edge");
                }
            }
        }
    }
}

/// Integer-lattice cross-validation: on integer coordinates the exact
/// determinant fits in i128, giving an independent ground truth for the
/// expansion-arithmetic fallbacks.
mod integer_ground_truth {
    use adm_geom::point::Point2;
    use adm_geom::predicates::{incircle, orient2d};
    use proptest::prelude::*;

    const R: i64 = 1 << 20;

    fn ipoint() -> impl Strategy<Value = (i64, i64)> {
        (-R..R, -R..R)
    }

    fn orient_i128(a: (i64, i64), b: (i64, i64), c: (i64, i64)) -> i128 {
        let (ax, ay) = (a.0 as i128, a.1 as i128);
        let (bx, by) = (b.0 as i128, b.1 as i128);
        let (cx, cy) = (c.0 as i128, c.1 as i128);
        (ax - cx) * (by - cy) - (ay - cy) * (bx - cx)
    }

    fn incircle_i128(a: (i64, i64), b: (i64, i64), c: (i64, i64), d: (i64, i64)) -> i128 {
        let col = |p: (i64, i64)| {
            let x = (p.0 - d.0) as i128;
            let y = (p.1 - d.1) as i128;
            (x, y, x * x + y * y)
        };
        let (ax, ay, aw) = col(a);
        let (bx, by, bw) = col(b);
        let (cx, cy, cw) = col(c);
        ax * (by * cw - cy * bw) - ay * (bx * cw - cx * bw) + aw * (bx * cy - cx * by)
    }

    fn f(p: (i64, i64)) -> Point2 {
        Point2::new(p.0 as f64, p.1 as f64)
    }

    /// Three-way sign (`f64::signum` maps +-0.0 to +-1.0, which is not
    /// what a predicate comparison wants).
    fn sign_f(v: f64) -> i32 {
        if v > 0.0 {
            1
        } else if v < 0.0 {
            -1
        } else {
            0
        }
    }

    fn sign_i(v: i128) -> i32 {
        v.signum() as i32
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        #[test]
        fn orient_matches_i128(a in ipoint(), b in ipoint(), c in ipoint()) {
            let got = orient2d(f(a), f(b), f(c));
            let want = orient_i128(a, b, c);
            prop_assert_eq!(sign_f(got), sign_i(want));
        }

        #[test]
        fn incircle_matches_i128(a in ipoint(), b in ipoint(), c in ipoint(), d in ipoint()) {
            let got = incircle(f(a), f(b), f(c), f(d));
            let want = incircle_i128(a, b, c, d);
            prop_assert_eq!(sign_f(got), sign_i(want));
        }

        /// Nearly-degenerate lattice configurations: collinear triples
        /// with one coordinate nudged by 0 or 1 ulp-of-lattice.
        #[test]
        fn orient_near_collinear_lattice(x in -R..R, k in 1i64..1000, eps in 0i64..2) {
            let a = (x, x);
            let b = (x + k, x + k);
            let c = (x + 2 * k, x + 2 * k + eps);
            let got = orient2d(f(a), f(b), f(c));
            let want = orient_i128(a, b, c);
            prop_assert_eq!(sign_f(got), sign_i(want));
        }

        /// Cocircular lattice squares with a nudged query point.
        #[test]
        fn incircle_near_cocircular_lattice(cx in -R/2..R/2, cy in -R/2..R/2, r in 1i64..10_000, eps in -1i64..2) {
            let a = (cx - r, cy - r);
            let b = (cx + r, cy - r);
            let c = (cx + r, cy + r);
            let d = (cx - r + eps, cy + r);
            let got = incircle(f(a), f(b), f(c), f(d));
            let want = incircle_i128(a, b, c, d);
            prop_assert_eq!(sign_f(got), sign_i(want));
        }
    }
}
