//! Property tests for the batched stage-A predicate filters.
//!
//! The batched filters promise *bit-identical* results to the scalar
//! adaptive ladder on every lane: a lane the straight-line stage-A bound
//! certifies returns the same `det` the scalar stage-A would, and an
//! uncertified lane replays through the scalar ladder itself. These tests
//! drive both filters with deliberately near-degenerate inputs — almost
//! collinear triples and almost cocircular quadruples, built by
//! perturbing exact configurations at machine-epsilon scale — where the
//! stage-A error bound cannot certify and the fallback path does the
//! work.

use adm_geom::point::Point2;
use adm_geom::predicates::{incircle, incircle_batch, orient2d, orient2d_batch};
use proptest::prelude::*;

/// Perturbation sizes from exactly-degenerate down to sub-ulp: zero keeps
/// the configuration exactly degenerate, the tiny magnitudes land inside
/// the stage-A uncertainty band.
fn eps() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(0.0),
        -1e-9f64..1e-9,
        -1e-14f64..1e-14,
        -1e-18f64..1e-18,
    ]
}

/// A triple that is collinear up to `e`: `c = a + t (b - a)` plus a
/// normal offset of size `e`.
fn near_collinear() -> impl Strategy<Value = (Point2, Point2, Point2)> {
    (
        -50.0f64..50.0,
        -50.0f64..50.0,
        -50.0f64..50.0,
        -50.0f64..50.0,
        -2.0f64..3.0,
        eps(),
    )
        .prop_map(|(ax, ay, bx, by, t, e)| {
            let a = Point2::new(ax, ay);
            let b = Point2::new(bx, by);
            let c = Point2::new(
                ax + t * (bx - ax) - e * (by - ay),
                ay + t * (by - ay) + e * (bx - ax),
            );
            (a, b, c)
        })
}

/// Four points on (almost) one circle: angles on a common center/radius,
/// with the fourth point's radius perturbed by `e`.
#[allow(clippy::type_complexity)]
fn near_cocircular() -> impl Strategy<Value = (Point2, Point2, Point2, Point2)> {
    (
        (-20.0f64..20.0, -20.0f64..20.0, 0.1f64..30.0),
        (0.0f64..1.0, 0.3f64..1.0, 0.1f64..0.9),
        eps(),
    )
        .prop_map(|((cx, cy, r), (a0, da1, da2), e)| {
            let tau = std::f64::consts::TAU;
            let at = |frac: f64, rr: f64| {
                Point2::new(cx + rr * (tau * frac).cos(), cy + rr * (tau * frac).sin())
            };
            // Three CCW points on the circle, a fourth near it.
            let t0 = a0;
            let t1 = a0 + da1 * 0.4;
            let t2 = a0 + 0.4 + da2 * 0.5;
            (
                at(t0, r),
                at(t1, r),
                at(t2, r),
                at(a0 + 0.93, r * (1.0 + e)),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Batched orient2d is bit-identical to the scalar ladder on every
    /// lane, even when every lane is near-degenerate.
    #[test]
    fn orient2d_batch_bitwise_agrees_with_scalar(
        lanes in prop::collection::vec(near_collinear(), 1..80)
    ) {
        let ax: Vec<f64> = lanes.iter().map(|l| l.0.x).collect();
        let ay: Vec<f64> = lanes.iter().map(|l| l.0.y).collect();
        let bx: Vec<f64> = lanes.iter().map(|l| l.1.x).collect();
        let by: Vec<f64> = lanes.iter().map(|l| l.1.y).collect();
        let cx: Vec<f64> = lanes.iter().map(|l| l.2.x).collect();
        let cy: Vec<f64> = lanes.iter().map(|l| l.2.y).collect();
        let mut out = vec![0.0f64; lanes.len()];
        orient2d_batch(&ax, &ay, &bx, &by, &cx, &cy, &mut out);
        for (k, &(a, b, c)) in lanes.iter().enumerate() {
            let scalar = orient2d(a, b, c);
            prop_assert_eq!(
                out[k].to_bits(),
                scalar.to_bits(),
                "lane {}: batch {} vs scalar {}",
                k,
                out[k],
                scalar
            );
        }
    }

    /// Batched incircle is bit-identical to the scalar ladder on every
    /// lane of near-cocircular quadruples.
    #[test]
    fn incircle_batch_bitwise_agrees_with_scalar(
        lanes in prop::collection::vec(near_cocircular(), 1..80)
    ) {
        let ax: Vec<f64> = lanes.iter().map(|l| l.0.x).collect();
        let ay: Vec<f64> = lanes.iter().map(|l| l.0.y).collect();
        let bx: Vec<f64> = lanes.iter().map(|l| l.1.x).collect();
        let by: Vec<f64> = lanes.iter().map(|l| l.1.y).collect();
        let cx: Vec<f64> = lanes.iter().map(|l| l.2.x).collect();
        let cy: Vec<f64> = lanes.iter().map(|l| l.2.y).collect();
        let dx: Vec<f64> = lanes.iter().map(|l| l.3.x).collect();
        let dy: Vec<f64> = lanes.iter().map(|l| l.3.y).collect();
        let mut out = vec![0.0f64; lanes.len()];
        incircle_batch(&ax, &ay, &bx, &by, &cx, &cy, &dx, &dy, &mut out);
        for (k, &(a, b, c, d)) in lanes.iter().enumerate() {
            let scalar = incircle(a, b, c, d);
            prop_assert_eq!(
                out[k].to_bits(),
                scalar.to_bits(),
                "lane {}: batch {} vs scalar {}",
                k,
                out[k],
                scalar
            );
        }
    }

    /// Exactly degenerate lanes (duplicate points, zero-length edges)
    /// agree with the scalar ladder too: sign is exactly zero on both.
    #[test]
    fn degenerate_lanes_are_exactly_zero(x in -50.0f64..50.0, y in -50.0f64..50.0) {
        let p = Point2::new(x, y);
        let q = Point2::new(x + 1.0, y - 2.0);
        let mut out = [0.0f64; 3];
        // (p, p, q), (p, q, p), (q, p, p): all exactly degenerate.
        orient2d_batch(
            &[p.x, p.x, q.x],
            &[p.y, p.y, q.y],
            &[p.x, q.x, p.x],
            &[p.y, q.y, p.y],
            &[q.x, p.x, p.x],
            &[q.y, p.y, p.y],
            &mut out,
        );
        for (k, v) in out.iter().enumerate() {
            prop_assert_eq!(*v, 0.0, "lane {} not exactly zero", k);
        }
    }
}
