//! Floating-point expansion arithmetic (Shewchuk 1997).
//!
//! An *expansion* is a sum of non-overlapping `f64` components stored in
//! increasing order of magnitude; it represents a real number exactly. The
//! adaptive predicates in [`crate::predicates`] fall back to this exact
//! arithmetic when a cheap floating-point filter cannot certify the sign of
//! a determinant.
//!
//! The primitives follow "Adaptive Precision Floating-Point Arithmetic and
//! Fast Robust Geometric Predicates", J. R. Shewchuk, Discrete &
//! Computational Geometry 18:305-363, 1997. All of them are exact provided
//! the inputs are finite and no overflow occurs.

/// Exact sum of two `f64`s as a head/tail pair: `a + b = hi + lo` exactly,
/// with `hi = fl(a + b)`.
#[inline]
pub fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let hi = a + b;
    let bv = hi - a;
    let av = hi - bv;
    let lo = (a - av) + (b - bv);
    (hi, lo)
}

/// Exact sum when `|a| >= |b|` (one fewer rounding step than [`two_sum`]).
#[inline]
pub fn fast_two_sum(a: f64, b: f64) -> (f64, f64) {
    debug_assert!(a == 0.0 || a.abs() >= b.abs() || !a.is_finite());
    let hi = a + b;
    let lo = b - (hi - a);
    (hi, lo)
}

/// Exact difference `a - b = hi + lo`.
#[inline]
pub fn two_diff(a: f64, b: f64) -> (f64, f64) {
    let hi = a - b;
    let bv = a - hi;
    let av = hi + bv;
    let lo = (a - av) + (bv - b);
    (hi, lo)
}

/// Roundoff tail of an already-computed difference: given `x = fl(a - b)`,
/// returns `lo` such that `a - b = x + lo` exactly. Lets the semi-static
/// predicate stages defer tail computation until the cheap stages fail.
#[inline]
pub fn two_diff_tail(a: f64, b: f64, x: f64) -> f64 {
    let bv = a - x;
    let av = x + bv;
    (a - av) + (bv - b)
}

/// Exact product `a * b = hi + lo`, via fused multiply-add.
#[inline]
pub fn two_product(a: f64, b: f64) -> (f64, f64) {
    let hi = a * b;
    let lo = f64::mul_add(a, b, -hi);
    (hi, lo)
}

/// Adds a single `f64` to an expansion, producing a non-overlapping
/// expansion in `out`. Returns the number of components written.
/// `out` must have room for `e.len() + 1` components.
pub fn grow_expansion(e: &[f64], b: f64, out: &mut [f64]) -> usize {
    let mut q = b;
    let mut n = 0;
    for &ei in e {
        let (qq, lo) = two_sum(q, ei);
        if lo != 0.0 {
            out[n] = lo;
            n += 1;
        }
        q = qq;
    }
    if q != 0.0 || n == 0 {
        out[n] = q;
        n += 1;
    }
    n
}

/// Sums two expansions into `out` (non-overlapping result, zero-eliminated).
/// `out` must have room for `e.len() + f.len() + 1` components.
///
/// Implemented as repeated [`grow_expansion`]; exactness (not peak speed) is
/// the contract — predicates only reach expansion arithmetic on
/// near-degenerate input.
pub fn expansion_sum(e: &[f64], f: &[f64], out: &mut [f64]) -> usize {
    expansion_sum_simple(e, f, out)
}

#[inline]
fn ensure_nonempty(out: &mut [f64], n: usize) -> usize {
    if n == 0 {
        out[0] = 0.0;
        1
    } else {
        n
    }
}

/// Multiplies an expansion by a single `f64` into `out` (zero-eliminated).
/// `out` must have room for `2 * e.len()` components.
pub fn scale_expansion(e: &[f64], b: f64, out: &mut [f64]) -> usize {
    if e.is_empty() {
        out[0] = 0.0;
        return 1;
    }
    let mut n = 0usize;
    let (mut q, lo) = two_product(e[0], b);
    if lo != 0.0 {
        out[n] = lo;
        n += 1;
    }
    for &ei in &e[1..] {
        let (phi, plo) = two_product(ei, b);
        let (sum, slo) = two_sum(q, plo);
        if slo != 0.0 {
            out[n] = slo;
            n += 1;
        }
        let (qq, qlo) = fast_two_sum(phi, sum);
        if qlo != 0.0 {
            out[n] = qlo;
            n += 1;
        }
        q = qq;
    }
    if q != 0.0 || n == 0 {
        out[n] = q;
        n += 1;
    }
    n
}

/// Exact difference of two head/tail pairs: `(a1 + a0) - b = x2 + x1 + x0`.
#[inline]
fn two_one_diff(a1: f64, a0: f64, b: f64) -> (f64, f64, f64) {
    let (i, x0) = two_diff(a0, b);
    let (x2, x1) = two_sum(a1, i);
    (x2, x1, x0)
}

/// Exact difference of two double-doubles: `(a1 + a0) - (b1 + b0)` as a
/// four-component expansion in increasing order of magnitude.
#[inline]
pub fn two_two_diff(a1: f64, a0: f64, b1: f64, b0: f64) -> [f64; 4] {
    let (j, r0, x0) = two_one_diff(a1, a0, b0);
    let (x3, x2, x1) = two_one_diff(j, r0, b1);
    [x0, x1, x2, x3]
}

/// Sums two expansions into `h` without heap allocation (Shewchuk's
/// `fast_expansion_sum_zeroelim`). Both inputs must be nonoverlapping and
/// sorted by increasing magnitude; the result is, too. Returns the number
/// of components written (at least 1 — a zero result is written as `[0.0]`).
/// `h` must have room for `e.len() + f.len()` components.
///
/// This is the merge the semi-static predicate stages use on their hot
/// path; the allocating [`Expansion`] type remains the fallback for the
/// fully exact stages, where clarity beats constant factors.
pub fn fast_expansion_sum_zeroelim(e: &[f64], f: &[f64], h: &mut [f64]) -> usize {
    if e.is_empty() {
        let n = f.len();
        h[..n].copy_from_slice(f);
        return ensure_nonempty(h, n);
    }
    if f.is_empty() {
        let n = e.len();
        h[..n].copy_from_slice(e);
        return ensure_nonempty(h, n);
    }
    let (mut eidx, mut fidx) = (0usize, 0usize);
    let (mut enow, mut fnow) = (e[0], f[0]);
    let mut q;
    if (fnow > enow) == (fnow > -enow) {
        q = enow;
        eidx += 1;
    } else {
        q = fnow;
        fidx += 1;
    }
    let mut n = 0usize;
    if eidx < e.len() && fidx < f.len() {
        enow = e[eidx];
        fnow = f[fidx];
        let (qq, lo) = if (fnow > enow) == (fnow > -enow) {
            eidx += 1;
            fast_two_sum(enow, q)
        } else {
            fidx += 1;
            fast_two_sum(fnow, q)
        };
        q = qq;
        if lo != 0.0 {
            h[n] = lo;
            n += 1;
        }
        while eidx < e.len() && fidx < f.len() {
            enow = e[eidx];
            fnow = f[fidx];
            let (qq, lo) = if (fnow > enow) == (fnow > -enow) {
                eidx += 1;
                two_sum(q, enow)
            } else {
                fidx += 1;
                two_sum(q, fnow)
            };
            q = qq;
            if lo != 0.0 {
                h[n] = lo;
                n += 1;
            }
        }
    }
    while eidx < e.len() {
        let (qq, lo) = two_sum(q, e[eidx]);
        eidx += 1;
        q = qq;
        if lo != 0.0 {
            h[n] = lo;
            n += 1;
        }
    }
    while fidx < f.len() {
        let (qq, lo) = two_sum(q, f[fidx]);
        fidx += 1;
        q = qq;
        if lo != 0.0 {
            h[n] = lo;
            n += 1;
        }
    }
    if q != 0.0 || n == 0 {
        h[n] = q;
        n += 1;
    }
    n
}

/// Approximate value of an expansion (sum of components, smallest first so
/// the largest dominates last).
#[inline]
pub fn estimate(e: &[f64]) -> f64 {
    e.iter().sum()
}

/// Sign of the exact value of an expansion: the sign of its largest
/// (last non-zero) component.
#[inline]
pub fn sign(e: &[f64]) -> f64 {
    for &c in e.iter().rev() {
        if c != 0.0 {
            return if c > 0.0 { 1.0 } else { -1.0 };
        }
    }
    0.0
}

/// A small growable expansion with inline storage, used by the predicates.
#[derive(Debug, Clone)]
pub struct Expansion {
    comps: Vec<f64>,
}

impl Expansion {
    /// The zero expansion.
    pub fn zero() -> Self {
        Expansion { comps: vec![] }
    }

    /// Expansion representing a single `f64`.
    pub fn from_f64(v: f64) -> Self {
        if v == 0.0 {
            Self::zero()
        } else {
            Expansion { comps: vec![v] }
        }
    }

    /// Exact product of two `f64`s as an expansion.
    pub fn product(a: f64, b: f64) -> Self {
        let (hi, lo) = two_product(a, b);
        let mut comps = Vec::with_capacity(2);
        if lo != 0.0 {
            comps.push(lo);
        }
        if hi != 0.0 {
            comps.push(hi);
        }
        Expansion { comps }
    }

    /// Exact sum.
    pub fn add(&self, other: &Expansion) -> Expansion {
        let mut out = vec![0.0; self.comps.len() + other.comps.len() + 1];
        let n = expansion_sum_simple(&self.comps, &other.comps, &mut out);
        out.truncate(n);
        Expansion { comps: out }
    }

    /// Exact difference.
    pub fn sub(&self, other: &Expansion) -> Expansion {
        self.add(&other.negate())
    }

    /// Exact negation.
    pub fn negate(&self) -> Expansion {
        Expansion {
            comps: self.comps.iter().map(|c| -c).collect(),
        }
    }

    /// Exact product with a scalar.
    pub fn scale(&self, b: f64) -> Expansion {
        if self.comps.is_empty() || b == 0.0 {
            return Self::zero();
        }
        let mut out = vec![0.0; 2 * self.comps.len()];
        let n = scale_expansion(&self.comps, b, &mut out);
        out.truncate(n);
        Expansion { comps: out }
    }

    /// Exact product of two expansions (distributes scale over components).
    pub fn mul(&self, other: &Expansion) -> Expansion {
        let mut acc = Expansion::zero();
        for &c in &other.comps {
            acc = acc.add(&self.scale(c));
        }
        acc
    }

    /// Sign of the exact value: -1.0, 0.0, or 1.0.
    pub fn sign(&self) -> f64 {
        sign(&self.comps)
    }

    /// Approximate `f64` value.
    pub fn approx(&self) -> f64 {
        estimate(&self.comps)
    }

    /// Borrow the raw components (increasing magnitude).
    pub fn components(&self) -> &[f64] {
        &self.comps
    }
}

/// Robust (if slightly slower) expansion sum used by [`Expansion::add`]:
/// repeated `grow_expansion`, which avoids the merge-order subtleties of the
/// fast variant. Exactness is what matters here; predicates only hit this
/// path on (near-)degenerate input.
fn expansion_sum_simple(e: &[f64], f: &[f64], out: &mut [f64]) -> usize {
    let mut cur: Vec<f64> = e.to_vec();
    let mut tmp = vec![0.0; e.len() + f.len() + 1];
    for &b in f {
        let n = grow_expansion(&cur, b, &mut tmp);
        cur.clear();
        cur.extend_from_slice(&tmp[..n]);
        // A grown expansion of all zeros collapses to [0.0]; strip it so
        // zero stays canonical (empty).
        if cur == [0.0] {
            cur.clear();
        }
    }
    let n = cur.len();
    out[..n].copy_from_slice(&cur);
    ensure_nonempty(out, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_sum_is_exact() {
        let a = 1.0;
        let b = 1e-30;
        let (hi, lo) = two_sum(a, b);
        assert_eq!(hi, 1.0);
        assert_eq!(lo, 1e-30);
        // hi + lo reproduces the mathematical sum exactly.
    }

    #[test]
    fn two_product_is_exact() {
        // (1 + 2^-52) * (1 + 2^-52) = 1 + 2^-51 + 2^-104: not representable.
        let a = 1.0 + f64::EPSILON;
        let (hi, lo) = two_product(a, a);
        assert_ne!(lo, 0.0);
        // Verify against 128-bit-ish reconstruction via expansions.
        let e = Expansion::product(a, a);
        assert_eq!(e.approx(), hi + lo);
    }

    #[test]
    fn two_diff_catastrophic_cancellation() {
        let a = 1.0 + f64::EPSILON;
        let b = 1.0;
        let (hi, lo) = two_diff(a, b);
        assert_eq!(hi, f64::EPSILON);
        assert_eq!(lo, 0.0);
    }

    #[test]
    fn expansion_add_sub_roundtrip() {
        let a = Expansion::product(1e20, 1.0 + f64::EPSILON);
        let b = Expansion::product(1e-20, 3.0);
        let s = a.add(&b);
        let d = s.sub(&a);
        // d must equal b exactly.
        assert_eq!(d.sub(&b).sign(), 0.0);
    }

    #[test]
    fn expansion_mul_matches_small_ints() {
        let a = Expansion::from_f64(3.0).add(&Expansion::from_f64(5.0));
        let b = Expansion::from_f64(7.0);
        let p = a.mul(&b);
        assert_eq!(p.approx(), 56.0);
        assert_eq!(p.sign(), 1.0);
    }

    #[test]
    fn sign_of_tiny_difference() {
        // x = 1 + eps, y = 1; x^2 - y^2 - 2*eps = eps^2 > 0, far below f64
        // resolution when accumulated naively around 1.0.
        let eps = f64::EPSILON;
        let x = Expansion::from_f64(1.0).add(&Expansion::from_f64(eps));
        let x2 = x.mul(&x);
        let y2 = Expansion::from_f64(1.0);
        let two_eps = Expansion::from_f64(2.0 * eps);
        let diff = x2.sub(&y2).sub(&two_eps);
        assert_eq!(diff.sign(), 1.0);
        // And the naive computation gets it wrong:
        let naive = (1.0 + eps) * (1.0 + eps) - 1.0 - 2.0 * eps;
        assert_eq!(naive, 0.0);
    }

    #[test]
    fn grow_expansion_zero_elimination() {
        let e = [1.0];
        let mut out = [0.0; 2];
        let n = grow_expansion(&e, -1.0, &mut out);
        assert_eq!(&out[..n], &[0.0]);
    }

    #[test]
    fn scale_expansion_exact() {
        let e = Expansion::from_f64(1.0).add(&Expansion::from_f64(f64::EPSILON));
        let s = e.scale(3.0);
        let expect = Expansion::from_f64(3.0).add(&Expansion::from_f64(3.0 * f64::EPSILON));
        assert_eq!(s.sub(&expect).sign(), 0.0);
    }

    #[test]
    fn negate_flips_sign() {
        let e = Expansion::product(1.0 + f64::EPSILON, 1.0 - f64::EPSILON);
        assert_eq!(e.sign(), 1.0);
        assert_eq!(e.negate().sign(), -1.0);
        assert_eq!(Expansion::zero().negate().sign(), 0.0);
    }
}
