//! Anisotropic metric tensors and discrete metric fields.
//!
//! The adaptation loop (solve → estimate → remesh) communicates its
//! sizing demand as a *metric*: a 2×2 symmetric positive-definite tensor
//! `M` per vertex whose unit ball is the ideal element shape — edge
//! lengths are measured as `sqrt(eᵀ M e)` and an adapted mesh makes every
//! edge unit length in its local metric. [`Metric2`] is one tensor with
//! the closed-form symmetric eigendecomposition the estimator needs to
//! clamp Hessian eigenvalues; [`MetricField`] is the per-vertex discrete
//! field with the log-Euclidean interpolation rule (interpolate
//! `log(M)` entrywise, then exponentiate) that keeps interpolated
//! tensors SPD and swap-symmetric.
//!
//! Everything here is deterministic: queries visit grid cells and
//! candidate vertices in a fixed order, ties break on vertex index, and
//! [`MetricField::canonical_bytes`] gives a platform-independent byte
//! encoding (-0.0 normalized to +0.0, little-endian IEEE bits) so a
//! field can be content-addressed by downstream hashing.

use crate::aabb::Aabb;
use crate::point::Point2;

/// A 2×2 symmetric positive-definite tensor `[[a, b], [b, d]]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metric2 {
    /// Top-left entry.
    pub a: f64,
    /// Off-diagonal entry (symmetric).
    pub b: f64,
    /// Bottom-right entry.
    pub d: f64,
}

impl Metric2 {
    /// The isotropic metric prescribing edge length `h` in every
    /// direction: `M = I / h²`.
    pub fn isotropic(h: f64) -> Self {
        assert!(h > 0.0 && h.is_finite(), "isotropic metric needs h > 0");
        let l = 1.0 / (h * h);
        Metric2 { a: l, b: 0.0, d: l }
    }

    /// Eigendecomposition of the symmetric tensor: returns
    /// `(l1, l2, (c, s))` with `l1 >= l2` and `(c, s)` the unit
    /// eigenvector of `l1`. Closed-form and branch-stable: the
    /// eigenvector is built from whichever column of `M - l2·I` has the
    /// larger norm, so nearly-isotropic tensors degrade to the axis
    /// (1, 0) instead of a 0/0.
    pub fn eigen(&self) -> (f64, f64, (f64, f64)) {
        let half_tr = 0.5 * (self.a + self.d);
        let half_diff = 0.5 * (self.a - self.d);
        let disc = (half_diff * half_diff + self.b * self.b).sqrt();
        let l1 = half_tr + disc;
        let l2 = half_tr - disc;
        // (M - l2 I) v = 0 for the l2-eigenvector; its columns span the
        // l1-eigendirection.
        let (vx, vy) = if half_diff >= 0.0 {
            (half_diff + disc, self.b)
        } else {
            (self.b, disc - half_diff)
        };
        let n = (vx * vx + vy * vy).sqrt();
        let dir = if n > 0.0 {
            (vx / n, vy / n)
        } else {
            (1.0, 0.0)
        };
        (l1, l2, dir)
    }

    /// Rebuilds the tensor `R diag(l1, l2) Rᵀ` from eigenvalues and the
    /// unit eigenvector `(c, s)` of `l1`.
    pub fn from_eigen(l1: f64, l2: f64, (c, s): (f64, f64)) -> Self {
        Metric2 {
            a: c * c * l1 + s * s * l2,
            b: c * s * (l1 - l2),
            d: s * s * l1 + c * c * l2,
        }
    }

    /// Builds the metric from a (possibly indefinite) recovered Hessian:
    /// take absolute eigenvalues, scale by the interpolation-error
    /// budget `eps`, and clamp to the edge-length window
    /// `[h_min, h_max]` (i.e. eigenvalues into `[1/h_max², 1/h_min²]`).
    /// The result is SPD by construction for every finite input.
    pub fn from_hessian(hxx: f64, hxy: f64, hyy: f64, eps: f64, h_min: f64, h_max: f64) -> Self {
        assert!(eps > 0.0 && eps.is_finite(), "eps must be positive");
        assert!(
            0.0 < h_min && h_min <= h_max && h_max.is_finite(),
            "need 0 < h_min <= h_max"
        );
        let h = Metric2 {
            a: hxx,
            b: hxy,
            d: hyy,
        };
        let (l1, l2, dir) = h.eigen();
        let lo = 1.0 / (h_max * h_max);
        let hi = 1.0 / (h_min * h_min);
        let clamp = |l: f64| {
            let v = l.abs() / eps;
            if v.is_nan() {
                lo
            } else {
                v.clamp(lo, hi)
            }
        };
        Metric2::from_eigen(clamp(l1), clamp(l2), dir)
    }

    /// Matrix logarithm of the SPD tensor (a symmetric matrix, returned
    /// as its `(a, b, d)` entries).
    pub fn log(&self) -> (f64, f64, f64) {
        let (l1, l2, dir) = self.eigen();
        debug_assert!(l1 > 0.0 && l2 > 0.0, "log of a non-SPD metric");
        let m = Metric2::from_eigen(l1.ln(), l2.ln(), dir);
        (m.a, m.b, m.d)
    }

    /// Matrix exponential of a symmetric matrix `(a, b, d)`; the result
    /// is SPD.
    pub fn exp_sym(a: f64, b: f64, d: f64) -> Self {
        let m = Metric2 { a, b, d };
        let (l1, l2, dir) = m.eigen();
        Metric2::from_eigen(l1.exp(), l2.exp(), dir)
    }

    /// The edge length the metric demands along its most restrictive
    /// eigendirection: `1/sqrt(λ_max)`. This is the conservative scalar
    /// `h` an isotropic refiner should consume.
    pub fn h_min_dir(&self) -> f64 {
        let (l1, _, _) = self.eigen();
        1.0 / l1.sqrt()
    }

    /// The edge length along the least restrictive eigendirection:
    /// `1/sqrt(λ_min)`.
    pub fn h_max_dir(&self) -> f64 {
        let (_, l2, _) = self.eigen();
        1.0 / l2.sqrt()
    }

    /// `true` when the tensor is finite, symmetric by construction, and
    /// positive-definite (`a > 0`, `det > 0`).
    pub fn is_spd(&self) -> bool {
        self.a.is_finite()
            && self.b.is_finite()
            && self.d.is_finite()
            && self.a > 0.0
            && self.a * self.d - self.b * self.b > 0.0
    }

    /// Log-Euclidean weighted mean: `exp(Σ wᵢ log(Mᵢ) / Σ wᵢ)`. Weights
    /// must be non-negative with a positive sum. SPD in, SPD out.
    pub fn interpolate_log(items: &[(f64, Metric2)]) -> Metric2 {
        let mut wsum = 0.0;
        let (mut a, mut b, mut d) = (0.0, 0.0, 0.0);
        for &(w, m) in items {
            debug_assert!(w >= 0.0);
            let (la, lb, ld) = m.log();
            a += w * la;
            b += w * lb;
            d += w * ld;
            wsum += w;
        }
        assert!(wsum > 0.0, "interpolate_log needs a positive weight sum");
        Metric2::exp_sym(a / wsum, b / wsum, d / wsum)
    }
}

/// Normalizes an f64 for canonical encoding: -0.0 becomes +0.0 (the
/// same rule the kernel's arena uses for coordinate identity).
fn canonical_f64_bits(v: f64) -> u64 {
    let v = if v == 0.0 { 0.0 } else { v };
    v.to_bits()
}

/// Header of the canonical [`MetricField`] encoding (versioned so a
/// future layout change cannot collide with old digests).
pub const METRIC_FIELD_MAGIC: &[u8] = b"ADM-METRIC-v1\n";

/// A discrete per-vertex metric field with deterministic log-Euclidean
/// interpolation between sample points.
///
/// Queries use a uniform grid over the sample bounding box: the `k`
/// nearest samples (ties broken by vertex index) are blended with
/// inverse-distance-squared weights in log space. A query landing
/// exactly on a sample returns that sample's tensor bit-for-bit, so the
/// field interpolates its data.
pub struct MetricField {
    pts: Vec<Point2>,
    metrics: Vec<Metric2>,
    bbox: Aabb,
    nx: u32,
    ny: u32,
    cell_start: Vec<u32>,
    cell_items: Vec<u32>,
    /// Squared snap tolerance: queries within this distance² of a
    /// sample return the sample exactly.
    snap_sq: f64,
}

/// Number of nearest samples blended per query.
const KNN: usize = 6;

impl MetricField {
    /// Builds a field from parallel sample/tensor arrays. Every tensor
    /// must be SPD and every point finite; at least one sample is
    /// required (a sizing query must always have an answer).
    pub fn new(pts: Vec<Point2>, metrics: Vec<Metric2>) -> Self {
        assert_eq!(pts.len(), metrics.len(), "points/metrics length mismatch");
        assert!(!pts.is_empty(), "a metric field needs at least one sample");
        for (i, (p, m)) in pts.iter().zip(&metrics).enumerate() {
            assert!(p.is_finite(), "non-finite sample point {i}");
            assert!(m.is_spd(), "non-SPD metric at sample {i}: {m:?}");
        }
        let mut bbox = Aabb::empty();
        for &p in &pts {
            bbox.expand(p);
        }
        let n = pts.len();
        let side = ((n as f64 / 4.0).sqrt().ceil() as u32).clamp(1, 256);
        let (nx, ny) = (side, side);
        // Counting sort of samples into cells (CSR layout).
        let cell_of = |p: Point2| -> usize {
            let w = (bbox.max.x - bbox.min.x).max(f64::MIN_POSITIVE);
            let h = (bbox.max.y - bbox.min.y).max(f64::MIN_POSITIVE);
            let cx = (((p.x - bbox.min.x) / w) * nx as f64) as i64;
            let cy = (((p.y - bbox.min.y) / h) * ny as f64) as i64;
            let cx = cx.clamp(0, nx as i64 - 1) as usize;
            let cy = cy.clamp(0, ny as i64 - 1) as usize;
            cy * nx as usize + cx
        };
        let ncells = (nx * ny) as usize;
        let mut counts = vec![0u32; ncells + 1];
        for &p in &pts {
            counts[cell_of(p) + 1] += 1;
        }
        for c in 1..=ncells {
            counts[c] += counts[c - 1];
        }
        let mut items = vec![0u32; n];
        let mut cursor = counts.clone();
        for (i, &p) in pts.iter().enumerate() {
            let c = cell_of(p);
            items[cursor[c] as usize] = i as u32;
            cursor[c] += 1;
        }
        let diag = bbox.min.distance(bbox.max).max(f64::MIN_POSITIVE);
        MetricField {
            pts,
            metrics,
            bbox,
            nx,
            ny,
            cell_start: counts,
            cell_items: items,
            snap_sq: (1e-12 * diag) * (1e-12 * diag),
        }
    }

    /// Sample count.
    pub fn len(&self) -> usize {
        self.pts.len()
    }

    /// `true` when the field has no samples (never, by construction —
    /// kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.pts.is_empty()
    }

    /// The sample points.
    pub fn points(&self) -> &[Point2] {
        &self.pts
    }

    /// The sample tensors (parallel to [`Self::points`]).
    pub fn metrics(&self) -> &[Metric2] {
        &self.metrics
    }

    fn cell_coords(&self, p: Point2) -> (i64, i64) {
        let w = (self.bbox.max.x - self.bbox.min.x).max(f64::MIN_POSITIVE);
        let h = (self.bbox.max.y - self.bbox.min.y).max(f64::MIN_POSITIVE);
        let cx = (((p.x - self.bbox.min.x) / w) * self.nx as f64) as i64;
        let cy = (((p.y - self.bbox.min.y) / h) * self.ny as f64) as i64;
        (
            cx.clamp(0, self.nx as i64 - 1),
            cy.clamp(0, self.ny as i64 - 1),
        )
    }

    /// Collects sample candidates in expanding Chebyshev rings around
    /// `p`'s cell until at least `k` are gathered, then one extra ring
    /// (a nearer sample can hide one ring further out than the ring
    /// that first satisfied the count).
    fn candidates(&self, p: Point2, k: usize) -> Vec<u32> {
        let (cx, cy) = self.cell_coords(p);
        let rmax = self.nx.max(self.ny) as i64;
        let mut out: Vec<u32> = Vec::with_capacity(k * 2);
        let push_cell = |out: &mut Vec<u32>, x: i64, y: i64| {
            if x < 0 || y < 0 || x >= self.nx as i64 || y >= self.ny as i64 {
                return;
            }
            let c = (y * self.nx as i64 + x) as usize;
            let (s, e) = (self.cell_start[c] as usize, self.cell_start[c + 1] as usize);
            out.extend_from_slice(&self.cell_items[s..e]);
        };
        let mut satisfied_at: Option<i64> = None;
        for r in 0..=rmax {
            if r == 0 {
                push_cell(&mut out, cx, cy);
            } else {
                for x in (cx - r)..=(cx + r) {
                    push_cell(&mut out, x, cy - r);
                    push_cell(&mut out, x, cy + r);
                }
                for y in (cy - r + 1)..(cy + r) {
                    push_cell(&mut out, cx - r, y);
                    push_cell(&mut out, cx + r, y);
                }
            }
            match satisfied_at {
                Some(r0) if r > r0 => break,
                None if out.len() >= k => satisfied_at = Some(r),
                _ => {}
            }
        }
        out
    }

    /// Interpolated tensor at `p`: log-Euclidean inverse-distance blend
    /// of the [`KNN`] nearest samples. Deterministic — candidate order
    /// is grid-fixed, ties break on the sample index.
    pub fn metric_at(&self, p: Point2) -> Metric2 {
        let k = KNN.min(self.pts.len());
        let mut cand = self.candidates(p, k);
        // (distance², index) ascending; index tiebreak keeps duplicate
        // sample points stable.
        cand.sort_by(|&i, &j| {
            let di = p.distance_sq(self.pts[i as usize]);
            let dj = p.distance_sq(self.pts[j as usize]);
            di.total_cmp(&dj).then(i.cmp(&j))
        });
        cand.truncate(k);
        cand.dedup();
        let nearest = cand[0] as usize;
        let d0 = p.distance_sq(self.pts[nearest]);
        if d0 <= self.snap_sq {
            return self.metrics[nearest];
        }
        let items: Vec<(f64, Metric2)> = cand
            .iter()
            .map(|&i| {
                let d2 = p.distance_sq(self.pts[i as usize]);
                (1.0 / d2, self.metrics[i as usize])
            })
            .collect();
        Metric2::interpolate_log(&items)
    }

    /// Scalar sizing view: the conservative edge length
    /// `1/sqrt(λ_max)` of the interpolated tensor at `p`.
    pub fn h_at(&self, p: Point2) -> f64 {
        self.metric_at(p).h_min_dir()
    }

    /// Canonical, platform-independent byte encoding: magic header,
    /// little-endian sample count, then per sample the canonicalized
    /// IEEE bits of `x, y, a, b, d` (-0.0 → +0.0). Two fields with the
    /// same samples encode identically; hashing these bytes gives a
    /// content address for the adaptation cycle that produced the field.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(METRIC_FIELD_MAGIC.len() + 8 + 40 * self.pts.len());
        out.extend_from_slice(METRIC_FIELD_MAGIC);
        out.extend_from_slice(&(self.pts.len() as u64).to_le_bytes());
        for (p, m) in self.pts.iter().zip(&self.metrics) {
            for v in [p.x, p.y, m.a, m.b, m.d] {
                out.extend_from_slice(&canonical_f64_bits(v).to_le_bytes());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    #[test]
    fn isotropic_roundtrip() {
        let m = Metric2::isotropic(0.25);
        assert!(m.is_spd());
        assert!((m.h_min_dir() - 0.25).abs() < 1e-14);
        assert!((m.h_max_dir() - 0.25).abs() < 1e-14);
        let (l1, l2, _) = m.eigen();
        assert!((l1 - 16.0).abs() < 1e-12);
        assert!((l2 - 16.0).abs() < 1e-12);
    }

    #[test]
    fn eigen_reconstructs_anisotropic_tensor() {
        // Eigenvalues 100 and 4, eigenvector at 30 degrees.
        let (c, s) = (30f64.to_radians().cos(), 30f64.to_radians().sin());
        let m = Metric2::from_eigen(100.0, 4.0, (c, s));
        let (l1, l2, (ec, es)) = m.eigen();
        assert!((l1 - 100.0).abs() < 1e-10);
        assert!((l2 - 4.0).abs() < 1e-10);
        // Eigenvector defined up to sign.
        let dot = (ec * c + es * s).abs();
        assert!((dot - 1.0).abs() < 1e-12, "eigvec off: {ec} {es}");
        assert!((m.h_min_dir() - 0.1).abs() < 1e-12);
        assert!((m.h_max_dir() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn from_hessian_clamps_to_window() {
        // Indefinite Hessian with a huge and a tiny eigenvalue.
        let m = Metric2::from_hessian(1e9, 0.0, -1e-9, 1.0, 0.01, 10.0);
        assert!(m.is_spd());
        let (l1, l2, _) = m.eigen();
        assert!((l1 - 1.0 / (0.01 * 0.01)).abs() < 1e-6);
        assert!((l2 - 1.0 / (10.0 * 10.0)).abs() < 1e-12);
    }

    #[test]
    fn log_exp_roundtrip() {
        let m = Metric2::from_eigen(50.0, 2.0, (0.6, 0.8));
        let (a, b, d) = m.log();
        let back = Metric2::exp_sym(a, b, d);
        assert!((back.a - m.a).abs() < 1e-9 * m.a.abs());
        assert!((back.b - m.b).abs() < 1e-9 * m.a.abs());
        assert!((back.d - m.d).abs() < 1e-9 * m.a.abs());
    }

    #[test]
    fn interpolation_of_equal_tensors_is_identity() {
        let m = Metric2::from_eigen(9.0, 1.0, (1.0, 0.0));
        let out = Metric2::interpolate_log(&[(0.3, m), (0.7, m)]);
        assert!((out.a - m.a).abs() < 1e-12);
        assert!((out.b - m.b).abs() < 1e-12);
        assert!((out.d - m.d).abs() < 1e-12);
    }

    #[test]
    fn interpolation_stays_spd_between_extremes() {
        let m1 = Metric2::isotropic(1e-3);
        let m2 = Metric2::from_eigen(1.0, 1e-4, (0.0, 1.0));
        for t in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let out = Metric2::interpolate_log(&[(1.0 - t, m1), (t, m2)]);
            assert!(out.is_spd(), "not SPD at t={t}: {out:?}");
        }
    }

    #[test]
    fn field_returns_samples_exactly() {
        let pts = vec![p(0.0, 0.0), p(1.0, 0.0), p(0.0, 1.0), p(1.0, 1.0)];
        let ms = vec![
            Metric2::isotropic(0.1),
            Metric2::isotropic(0.2),
            Metric2::isotropic(0.4),
            Metric2::from_eigen(25.0, 4.0, (0.8, 0.6)),
        ];
        let f = MetricField::new(pts.clone(), ms.clone());
        for (q, m) in pts.iter().zip(&ms) {
            let got = f.metric_at(*q);
            assert_eq!(got.a.to_bits(), m.a.to_bits());
            assert_eq!(got.b.to_bits(), m.b.to_bits());
            assert_eq!(got.d.to_bits(), m.d.to_bits());
        }
    }

    #[test]
    fn field_interpolates_between_samples() {
        let f = MetricField::new(
            vec![p(0.0, 0.0), p(1.0, 0.0)],
            vec![Metric2::isotropic(0.1), Metric2::isotropic(0.4)],
        );
        let h = f.h_at(p(0.5, 0.0));
        // Log-Euclidean IDW with equal weights: geometric mean of h.
        assert!(h > 0.1 && h < 0.4, "h = {h}");
        assert!((h - 0.2).abs() < 0.05, "h = {h}");
        // Far outside the hull the blend stays within the sample range.
        let far = f.h_at(p(100.0, 0.0));
        assert!((0.1 - 1e-12..=0.4 + 1e-12).contains(&far), "far = {far}");
    }

    #[test]
    fn field_queries_are_deterministic() {
        let n = 200;
        let pts: Vec<Point2> = (0..n)
            .map(|i| {
                let x = (i as f64 * 0.61803398875).fract();
                let y = (i as f64 * 0.38196601125).fract();
                p(x * 4.0, y * 3.0)
            })
            .collect();
        let ms: Vec<Metric2> = (0..n)
            .map(|i| Metric2::isotropic(0.05 + 0.001 * (i % 17) as f64))
            .collect();
        let f1 = MetricField::new(pts.clone(), ms.clone());
        let f2 = MetricField::new(pts, ms);
        for i in 0..50 {
            let q = p(0.13 * i as f64 - 1.0, 0.07 * i as f64 - 0.5);
            let (m1, m2) = (f1.metric_at(q), f2.metric_at(q));
            assert_eq!(m1.a.to_bits(), m2.a.to_bits());
            assert_eq!(m1.b.to_bits(), m2.b.to_bits());
            assert_eq!(m1.d.to_bits(), m2.d.to_bits());
        }
    }

    #[test]
    fn canonical_bytes_normalize_negative_zero() {
        let f1 = MetricField::new(vec![p(0.0, 0.0)], vec![Metric2::isotropic(1.0)]);
        let f2 = MetricField::new(vec![p(-0.0, 0.0)], vec![Metric2::isotropic(1.0)]);
        assert_eq!(f1.canonical_bytes(), f2.canonical_bytes());
        assert!(f1.canonical_bytes().starts_with(METRIC_FIELD_MAGIC));
        // Different data, different bytes.
        let f3 = MetricField::new(vec![p(0.0, 0.0)], vec![Metric2::isotropic(2.0)]);
        assert_ne!(f1.canonical_bytes(), f3.canonical_bytes());
    }
}
