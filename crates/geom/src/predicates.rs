//! Robust adaptive geometric predicates.
//!
//! `orient2d` and `incircle` are the two predicates every Delaunay algorithm
//! stands on. Both walk Shewchuk's adaptive ladder: a cheap floating-point
//! filter (stage A), then progressively tighter semi-static stages (B, C)
//! that reuse work from the previous rung, and only when every filter fails
//! a fully exact evaluation with floating-point expansions from
//! [`crate::expansion`]. The result is therefore always the sign of the
//! exact real-arithmetic determinant, and near-degenerate — but not exactly
//! degenerate — inputs are usually resolved without heap allocation.
//!
//! Build with the `predicate-stats` feature to count how often each rung of
//! the ladder settles the sign (see [`stats`]).

use crate::expansion::{
    estimate, fast_expansion_sum_zeroelim, scale_expansion, two_diff, two_diff_tail, two_product,
    two_two_diff, Expansion,
};
use crate::point::Point2;

/// Machine epsilon for `f64` halved, as used in Shewchuk's bounds
/// (his `epsilon` is the rounding unit 2^-53).
const EPS: f64 = f64::EPSILON / 2.0;

/// Stage-A error bound for `orient2d`: `(3 + 16*eps) * eps`.
const CCW_ERR_BOUND_A: f64 = (3.0 + 16.0 * EPS) * EPS;

/// Stage-B error bound for `orient2d`: `(2 + 12*eps) * eps`.
const CCW_ERR_BOUND_B: f64 = (2.0 + 12.0 * EPS) * EPS;

/// Stage-C error bound for `orient2d`: `(9 + 64*eps) * eps^2`.
const CCW_ERR_BOUND_C: f64 = (9.0 + 64.0 * EPS) * EPS * EPS;

/// Relative error of summing a correction into an estimate: `(3 + 8*eps) * eps`.
const RESULT_ERR_BOUND: f64 = (3.0 + 8.0 * EPS) * EPS;

/// Stage-A error bound for `incircle`: `(10 + 96*eps) * eps`.
const ICC_ERR_BOUND_A: f64 = (10.0 + 96.0 * EPS) * EPS;

/// Stage-B error bound for `incircle`: `(4 + 48*eps) * eps`.
const ICC_ERR_BOUND_B: f64 = (4.0 + 48.0 * EPS) * EPS;

/// Stage-C error bound for `incircle`: `(44 + 576*eps) * eps^2`.
const ICC_ERR_BOUND_C: f64 = (44.0 + 576.0 * EPS) * EPS * EPS;

/// Hit-rate counters for each rung of the predicate ladder, compiled in
/// only with the `predicate-stats` feature. All counters are process-wide
/// relaxed atomics: cheap enough to leave on during benchmarking runs.
#[cfg(feature = "predicate-stats")]
pub mod stats {
    use std::sync::atomic::{AtomicU64, Ordering};

    pub static ORIENT_A: AtomicU64 = AtomicU64::new(0);
    pub static ORIENT_B: AtomicU64 = AtomicU64::new(0);
    pub static ORIENT_C: AtomicU64 = AtomicU64::new(0);
    pub static ORIENT_EXACT: AtomicU64 = AtomicU64::new(0);
    pub static INCIRCLE_A: AtomicU64 = AtomicU64::new(0);
    pub static INCIRCLE_B: AtomicU64 = AtomicU64::new(0);
    pub static INCIRCLE_C: AtomicU64 = AtomicU64::new(0);
    pub static INCIRCLE_EXACT: AtomicU64 = AtomicU64::new(0);

    /// Lanes evaluated through [`crate::predicates::orient2d_batch`] /
    /// [`crate::predicates::incircle_batch`], and how many of those lanes
    /// the vectorizable stage-A filter could *not* certify (each fallback
    /// also bumps the scalar ladder counters above as usual).
    pub static ORIENT_BATCH: AtomicU64 = AtomicU64::new(0);
    pub static ORIENT_BATCH_FALLBACK: AtomicU64 = AtomicU64::new(0);
    pub static INCIRCLE_BATCH: AtomicU64 = AtomicU64::new(0);
    pub static INCIRCLE_BATCH_FALLBACK: AtomicU64 = AtomicU64::new(0);

    /// Snapshot of the counters as
    /// `(orient [A, B, C, exact], incircle [A, B, C, exact])`.
    pub fn snapshot() -> ([u64; 4], [u64; 4]) {
        (
            [
                ORIENT_A.load(Ordering::Relaxed),
                ORIENT_B.load(Ordering::Relaxed),
                ORIENT_C.load(Ordering::Relaxed),
                ORIENT_EXACT.load(Ordering::Relaxed),
            ],
            [
                INCIRCLE_A.load(Ordering::Relaxed),
                INCIRCLE_B.load(Ordering::Relaxed),
                INCIRCLE_C.load(Ordering::Relaxed),
                INCIRCLE_EXACT.load(Ordering::Relaxed),
            ],
        )
    }

    /// Snapshot of the batch counters as
    /// `(orient [lanes, fallbacks], incircle [lanes, fallbacks])`.
    pub fn batch_snapshot() -> ([u64; 2], [u64; 2]) {
        (
            [
                ORIENT_BATCH.load(Ordering::Relaxed),
                ORIENT_BATCH_FALLBACK.load(Ordering::Relaxed),
            ],
            [
                INCIRCLE_BATCH.load(Ordering::Relaxed),
                INCIRCLE_BATCH_FALLBACK.load(Ordering::Relaxed),
            ],
        )
    }

    /// Zeroes every counter.
    pub fn reset() {
        for c in [
            &ORIENT_A,
            &ORIENT_B,
            &ORIENT_C,
            &ORIENT_EXACT,
            &INCIRCLE_A,
            &INCIRCLE_B,
            &INCIRCLE_C,
            &INCIRCLE_EXACT,
            &ORIENT_BATCH,
            &ORIENT_BATCH_FALLBACK,
            &INCIRCLE_BATCH,
            &INCIRCLE_BATCH_FALLBACK,
        ] {
            c.store(0, Ordering::Relaxed);
        }
    }

    /// Mirrors the current counter values into a trace metrics registry
    /// under the `geom.*` namespace. The atomics stay the recording
    /// mechanism (zero-overhead in the insertion hot path); the registry
    /// is the reporting surface shared with every other subsystem.
    pub fn publish(tracer: &adm_trace::Tracer) {
        let (orient, incircle) = snapshot();
        let (orient_batch, incircle_batch) = batch_snapshot();
        for (name, v) in [
            ("geom.orient2d.stage_a", orient[0]),
            ("geom.orient2d.stage_b", orient[1]),
            ("geom.orient2d.stage_c", orient[2]),
            ("geom.orient2d.exact", orient[3]),
            ("geom.incircle.stage_a", incircle[0]),
            ("geom.incircle.stage_b", incircle[1]),
            ("geom.incircle.stage_c", incircle[2]),
            ("geom.incircle.exact", incircle[3]),
            ("geom.orient2d.batch", orient_batch[0]),
            ("geom.orient2d.batch_fallback", orient_batch[1]),
            ("geom.incircle.batch", incircle_batch[0]),
            ("geom.incircle.batch_fallback", incircle_batch[1]),
        ] {
            tracer.set_count(name, v);
        }
    }
}

#[cfg(feature = "predicate-stats")]
macro_rules! bump {
    ($counter:ident) => {
        crate::predicates::stats::$counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    };
}

#[cfg(not(feature = "predicate-stats"))]
macro_rules! bump {
    ($counter:ident) => {};
}

#[cfg(feature = "predicate-stats")]
macro_rules! bump_n {
    ($counter:ident, $n:expr) => {
        crate::predicates::stats::$counter
            .fetch_add($n as u64, std::sync::atomic::Ordering::Relaxed)
    };
}

#[cfg(not(feature = "predicate-stats"))]
macro_rules! bump_n {
    ($counter:ident, $n:expr) => {
        let _ = $n;
    };
}

/// Orientation of the triple `(a, b, c)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orientation {
    /// `c` lies to the left of the directed line `a -> b` (counter-clockwise).
    Ccw,
    /// `c` lies to the right of the directed line `a -> b` (clockwise).
    Cw,
    /// The three points are exactly collinear.
    Collinear,
}

/// Returns a positive value if `a, b, c` are in counter-clockwise order,
/// negative if clockwise, and exactly `0.0` if collinear.
///
/// The magnitude (when nonzero) is an approximation of twice the signed
/// triangle area; only the **sign** is guaranteed exact.
#[inline]
pub fn orient2d(a: Point2, b: Point2, c: Point2) -> f64 {
    let detleft = (a.x - c.x) * (b.y - c.y);
    let detright = (a.y - c.y) * (b.x - c.x);
    let det = detleft - detright;

    let detsum = if detleft > 0.0 {
        if detright <= 0.0 {
            bump!(ORIENT_A);
            return det;
        }
        detleft + detright
    } else if detleft < 0.0 {
        if detright >= 0.0 {
            bump!(ORIENT_A);
            return det;
        }
        -detleft - detright
    } else {
        bump!(ORIENT_A);
        return det;
    };

    let errbound = CCW_ERR_BOUND_A * detsum;
    if det >= errbound || -det >= errbound {
        bump!(ORIENT_A);
        return det;
    }
    orient2d_adapt(a, b, c, detsum)
}

/// Stages B-D of Shewchuk's adaptive `orient2d`, entered when the stage-A
/// filter cannot certify the sign. Each stage reuses the exact partial
/// results of the previous one; all intermediates live on the stack.
#[cold]
fn orient2d_adapt(a: Point2, b: Point2, c: Point2, detsum: f64) -> f64 {
    let acx = a.x - c.x;
    let bcx = b.x - c.x;
    let acy = a.y - c.y;
    let bcy = b.y - c.y;

    // Stage B: the determinant of the rounded differences, exactly.
    let (detleft, detlefttail) = two_product(acx, bcy);
    let (detright, detrighttail) = two_product(acy, bcx);
    let b_exp = two_two_diff(detleft, detlefttail, detright, detrighttail);
    let mut det = estimate(&b_exp);
    let errbound = CCW_ERR_BOUND_B * detsum;
    if det >= errbound || -det >= errbound {
        bump!(ORIENT_B);
        return det;
    }

    // Stage C: fold in the first-order tail terms.
    let acxtail = two_diff_tail(a.x, c.x, acx);
    let bcxtail = two_diff_tail(b.x, c.x, bcx);
    let acytail = two_diff_tail(a.y, c.y, acy);
    let bcytail = two_diff_tail(b.y, c.y, bcy);
    if acxtail == 0.0 && acytail == 0.0 && bcxtail == 0.0 && bcytail == 0.0 {
        // The differences were exact: stage B's value is the exact sign.
        bump!(ORIENT_B);
        return det;
    }
    let errbound = CCW_ERR_BOUND_C * detsum + RESULT_ERR_BOUND * det.abs();
    det += (acx * bcytail + bcy * acxtail) - (acy * bcxtail + bcx * acytail);
    if det >= errbound || -det >= errbound {
        bump!(ORIENT_C);
        return det;
    }

    // Stage D: exact, accumulating the remaining tail products into B.
    bump!(ORIENT_EXACT);
    let (s1, s0) = two_product(acxtail, bcy);
    let (t1, t0) = two_product(acytail, bcx);
    let u = two_two_diff(s1, s0, t1, t0);
    let mut c1 = [0.0f64; 8];
    let c1len = fast_expansion_sum_zeroelim(&b_exp, &u, &mut c1);

    let (s1, s0) = two_product(acx, bcytail);
    let (t1, t0) = two_product(acy, bcxtail);
    let u = two_two_diff(s1, s0, t1, t0);
    let mut c2 = [0.0f64; 12];
    let c2len = fast_expansion_sum_zeroelim(&c1[..c1len], &u, &mut c2);

    let (s1, s0) = two_product(acxtail, bcytail);
    let (t1, t0) = two_product(acytail, bcxtail);
    let u = two_two_diff(s1, s0, t1, t0);
    let mut d_exp = [0.0f64; 16];
    let dlen = fast_expansion_sum_zeroelim(&c2[..c2len], &u, &mut d_exp);

    d_exp[dlen - 1]
}

/// Fully exact `orient2d` via expansion arithmetic — retained as the
/// reference implementation the ladder is validated against.
///
/// The determinant expands to six exact products whose `c`-only terms
/// cancel: `ax*by - ax*cy - cx*by - ay*bx + ay*cx + cy*bx`.
#[cfg(test)]
fn orient2d_exact(a: Point2, b: Point2, c: Point2) -> f64 {
    let t1 = Expansion::product(a.x, b.y);
    let t2 = Expansion::product(a.x, c.y).negate();
    let t3 = Expansion::product(c.x, b.y).negate();
    let t4 = Expansion::product(a.y, b.x).negate();
    let t5 = Expansion::product(a.y, c.x);
    let t6 = Expansion::product(c.y, b.x);
    let det = t1.add(&t2).add(&t3).add(&t4).add(&t5).add(&t6);
    let s = det.sign();
    if s == 0.0 {
        0.0
    } else {
        // Preserve an order-of-magnitude estimate with the exact sign.
        let approx = det.approx();
        if approx != 0.0 && approx.signum() == s {
            approx
        } else {
            s * f64::MIN_POSITIVE
        }
    }
}

/// Classified orientation of `(a, b, c)`.
#[inline]
pub fn orientation(a: Point2, b: Point2, c: Point2) -> Orientation {
    let d = orient2d(a, b, c);
    if d > 0.0 {
        Orientation::Ccw
    } else if d < 0.0 {
        Orientation::Cw
    } else {
        Orientation::Collinear
    }
}

/// Returns a positive value if `d` lies strictly inside the circle through
/// `a, b, c` (which must be in counter-clockwise order), negative if
/// strictly outside, and exactly `0.0` if the four points are concyclic.
///
/// If `a, b, c` are clockwise the sign is flipped, matching the standard
/// determinant convention.
#[inline]
pub fn incircle(a: Point2, b: Point2, c: Point2, d: Point2) -> f64 {
    let adx = a.x - d.x;
    let bdx = b.x - d.x;
    let cdx = c.x - d.x;
    let ady = a.y - d.y;
    let bdy = b.y - d.y;
    let cdy = c.y - d.y;

    let bdxcdy = bdx * cdy;
    let cdxbdy = cdx * bdy;
    let alift = adx * adx + ady * ady;

    let cdxady = cdx * ady;
    let adxcdy = adx * cdy;
    let blift = bdx * bdx + bdy * bdy;

    let adxbdy = adx * bdy;
    let bdxady = bdx * ady;
    let clift = cdx * cdx + cdy * cdy;

    let det = alift * (bdxcdy - cdxbdy) + blift * (cdxady - adxcdy) + clift * (adxbdy - bdxady);

    let permanent = (bdxcdy.abs() + cdxbdy.abs()) * alift
        + (cdxady.abs() + adxcdy.abs()) * blift
        + (adxbdy.abs() + bdxady.abs()) * clift;
    let errbound = ICC_ERR_BOUND_A * permanent;
    if det > errbound || -det > errbound {
        bump!(INCIRCLE_A);
        return det;
    }
    incircle_adapt(a, b, c, d, permanent)
}

/// Stages B-C of Shewchuk's adaptive `incircle`. Stage B evaluates the
/// determinant of the rounded differences exactly on the stack; stage C
/// adds a first-order tail correction. Genuinely degenerate input falls
/// through to [`incircle_exact`].
#[cold]
fn incircle_adapt(a: Point2, b: Point2, c: Point2, d: Point2, permanent: f64) -> f64 {
    let adx = a.x - d.x;
    let bdx = b.x - d.x;
    let cdx = c.x - d.x;
    let ady = a.y - d.y;
    let bdy = b.y - d.y;
    let cdy = c.y - d.y;

    // Stage B: lift each rounded difference pair exactly.
    // adet = (adx^2 + ady^2) * (bdx*cdy - cdx*bdy), exactly; likewise for
    // the b and c rows by symmetric rotation.
    let row = |px: f64, py: f64, qx: f64, qy: f64, rx: f64, ry: f64, out: &mut [f64; 32]| {
        let (qr1, qr0) = two_product(qx, ry);
        let (rq1, rq0) = two_product(rx, qy);
        let cross = two_two_diff(qr1, qr0, rq1, rq0);
        let mut px_cross = [0.0f64; 8];
        let nx = scale_expansion(&cross, px, &mut px_cross);
        let mut pxx_cross = [0.0f64; 16];
        let nxx = scale_expansion(&px_cross[..nx], px, &mut pxx_cross);
        let mut py_cross = [0.0f64; 8];
        let ny = scale_expansion(&cross, py, &mut py_cross);
        let mut pyy_cross = [0.0f64; 16];
        let nyy = scale_expansion(&py_cross[..ny], py, &mut pyy_cross);
        fast_expansion_sum_zeroelim(&pxx_cross[..nxx], &pyy_cross[..nyy], out)
    };
    let mut adet = [0.0f64; 32];
    let alen = row(adx, ady, bdx, bdy, cdx, cdy, &mut adet);
    let mut bdet = [0.0f64; 32];
    let blen = row(bdx, bdy, cdx, cdy, adx, ady, &mut bdet);
    let mut cdet = [0.0f64; 32];
    let clen = row(cdx, cdy, adx, ady, bdx, bdy, &mut cdet);

    let mut abdet = [0.0f64; 64];
    let ablen = fast_expansion_sum_zeroelim(&adet[..alen], &bdet[..blen], &mut abdet);
    let mut fin = [0.0f64; 96];
    let finlen = fast_expansion_sum_zeroelim(&abdet[..ablen], &cdet[..clen], &mut fin);

    let mut det = estimate(&fin[..finlen]);
    let errbound = ICC_ERR_BOUND_B * permanent;
    if det >= errbound || -det >= errbound {
        bump!(INCIRCLE_B);
        return det;
    }

    // Stage C: first-order correction with the difference tails.
    let adxtail = two_diff_tail(a.x, d.x, adx);
    let adytail = two_diff_tail(a.y, d.y, ady);
    let bdxtail = two_diff_tail(b.x, d.x, bdx);
    let bdytail = two_diff_tail(b.y, d.y, bdy);
    let cdxtail = two_diff_tail(c.x, d.x, cdx);
    let cdytail = two_diff_tail(c.y, d.y, cdy);
    if adxtail == 0.0
        && bdxtail == 0.0
        && cdxtail == 0.0
        && adytail == 0.0
        && bdytail == 0.0
        && cdytail == 0.0
    {
        // The differences were exact: stage B's value is the exact sign.
        bump!(INCIRCLE_B);
        return det;
    }
    let errbound = ICC_ERR_BOUND_C * permanent + RESULT_ERR_BOUND * det.abs();
    det += ((adx * adx + ady * ady)
        * ((bdx * cdytail + cdy * bdxtail) - (bdy * cdxtail + cdx * bdytail))
        + 2.0 * (adx * adxtail + ady * adytail) * (bdx * cdy - bdy * cdx))
        + ((bdx * bdx + bdy * bdy)
            * ((cdx * adytail + ady * cdxtail) - (cdy * adxtail + adx * cdytail))
            + 2.0 * (bdx * bdxtail + bdy * bdytail) * (cdx * ady - cdy * adx))
        + ((cdx * cdx + cdy * cdy)
            * ((adx * bdytail + bdy * adxtail) - (ady * bdxtail + bdx * adytail))
            + 2.0 * (cdx * cdxtail + cdy * cdytail) * (adx * bdy - ady * bdx));
    if det >= errbound || -det >= errbound {
        bump!(INCIRCLE_C);
        return det;
    }

    bump!(INCIRCLE_EXACT);
    incircle_exact(a, b, c, d)
}

/// Fully exact `incircle` via expansion arithmetic.
///
/// The differences `a - d` etc. are captured exactly with `two_diff` (each
/// becomes a <=2-component expansion); all subsequent products and sums use
/// exact expansion arithmetic, so the returned sign is exact.
fn incircle_exact(a: Point2, b: Point2, c: Point2, d: Point2) -> f64 {
    let exp_diff = |p: f64, q: f64| {
        let (hi, lo) = two_diff(p, q);
        let mut e = Expansion::from_f64(lo);
        e = e.add(&Expansion::from_f64(hi));
        e
    };
    let adx = exp_diff(a.x, d.x);
    let ady = exp_diff(a.y, d.y);
    let bdx = exp_diff(b.x, d.x);
    let bdy = exp_diff(b.y, d.y);
    let cdx = exp_diff(c.x, d.x);
    let cdy = exp_diff(c.y, d.y);

    let alift = adx.mul(&adx).add(&ady.mul(&ady));
    let blift = bdx.mul(&bdx).add(&bdy.mul(&bdy));
    let clift = cdx.mul(&cdx).add(&cdy.mul(&cdy));

    let bc = bdx.mul(&cdy).sub(&cdx.mul(&bdy));
    let ca = cdx.mul(&ady).sub(&adx.mul(&cdy));
    let ab = adx.mul(&bdy).sub(&bdx.mul(&ady));

    let det = alift.mul(&bc).add(&blift.mul(&ca)).add(&clift.mul(&ab));
    let s = det.sign();
    if s == 0.0 {
        0.0
    } else {
        let approx = det.approx();
        if approx != 0.0 && approx.signum() == s {
            approx
        } else {
            s * f64::MIN_POSITIVE
        }
    }
}

/// `true` when `d` is strictly inside the circumcircle of the CCW triangle
/// `(a, b, c)`.
#[inline]
pub fn in_circle(a: Point2, b: Point2, c: Point2, d: Point2) -> bool {
    incircle(a, b, c, d) > 0.0
}

/// Batched `orient2d` over coordinate lanes: `out[k] = orient2d(a_k, b_k, c_k)`
/// with `a_k = (ax[k], ay[k])` and so on. Returns the number of lanes the
/// stage-A filter could not certify (those fell back to the scalar ladder).
///
/// The first pass is straight-line branch-free arithmetic over all lanes —
/// the compiler auto-vectorizes it — recording an uncertified-lane mask. A
/// second pass replays only the masked lanes through [`orient2d`], so every
/// lane of `out` is **bit-identical** to the per-lane scalar call. Inputs
/// must be finite (no NaN/inf), which every mesh coordinate satisfies.
///
/// All seven slices must share one length; lane counts beyond 64 are
/// processed in 64-lane chunks. Inline so fixed-small-lane callers (the
/// point-location walk batches 3 edges at a time) compile to straight-line
/// code with the chunk machinery stripped.
#[inline]
pub fn orient2d_batch(
    ax: &[f64],
    ay: &[f64],
    bx: &[f64],
    by: &[f64],
    cx: &[f64],
    cy: &[f64],
    out: &mut [f64],
) -> usize {
    let n = out.len();
    assert!(
        ax.len() == n
            && ay.len() == n
            && bx.len() == n
            && by.len() == n
            && cx.len() == n
            && cy.len() == n,
        "orient2d_batch: slice length mismatch"
    );
    let mut fallbacks = 0usize;
    let mut k0 = 0usize;
    while k0 < n {
        let m = (n - k0).min(64);
        let mut mask = 0u64;
        for j in 0..m {
            let k = k0 + j;
            let detleft = (ax[k] - cx[k]) * (by[k] - cy[k]);
            let detright = (ay[k] - cy[k]) * (bx[k] - cx[k]);
            let det = detleft - detright;
            // Matches the scalar stage-A exactly: when the two products have
            // strictly the same sign, |detleft + detright| equals
            // |detleft| + |detright|, and the sign is certified iff
            // |det| >= errbound (mixed signs or a zero certify for free).
            // Signs are compared directly — a product of the two could
            // underflow to zero and falsely certify subnormal-range lanes.
            let detsum = detleft.abs() + detright.abs();
            let same_sign =
                ((detleft > 0.0) & (detright > 0.0)) | ((detleft < 0.0) & (detright < 0.0));
            let uncertified = same_sign & (det.abs() < CCW_ERR_BOUND_A * detsum);
            mask |= (uncertified as u64) << j;
            out[k] = det;
        }
        let mut mm = mask;
        while mm != 0 {
            let j = mm.trailing_zeros() as usize;
            mm &= mm - 1;
            let k = k0 + j;
            out[k] = orient2d(
                Point2::new(ax[k], ay[k]),
                Point2::new(bx[k], by[k]),
                Point2::new(cx[k], cy[k]),
            );
            fallbacks += 1;
        }
        k0 += m;
    }
    bump_n!(ORIENT_BATCH, n);
    bump_n!(ORIENT_BATCH_FALLBACK, fallbacks);
    fallbacks
}

/// Batched `incircle` over coordinate lanes:
/// `out[k] = incircle(a_k, b_k, c_k, d_k)`. Returns the number of lanes the
/// stage-A filter could not certify. Same contract as [`orient2d_batch`]:
/// pass 1 is branch-free and auto-vectorizable, pass 2 replays uncertified
/// lanes through the scalar adaptive ladder, and every lane of `out` is
/// bit-identical to the per-lane [`incircle`] call on finite inputs.
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn incircle_batch(
    ax: &[f64],
    ay: &[f64],
    bx: &[f64],
    by: &[f64],
    cx: &[f64],
    cy: &[f64],
    dx: &[f64],
    dy: &[f64],
    out: &mut [f64],
) -> usize {
    let n = out.len();
    assert!(
        ax.len() == n
            && ay.len() == n
            && bx.len() == n
            && by.len() == n
            && cx.len() == n
            && cy.len() == n
            && dx.len() == n
            && dy.len() == n,
        "incircle_batch: slice length mismatch"
    );
    let mut fallbacks = 0usize;
    let mut k0 = 0usize;
    while k0 < n {
        let m = (n - k0).min(64);
        let mut mask = 0u64;
        for j in 0..m {
            let k = k0 + j;
            let adx = ax[k] - dx[k];
            let bdx = bx[k] - dx[k];
            let cdx = cx[k] - dx[k];
            let ady = ay[k] - dy[k];
            let bdy = by[k] - dy[k];
            let cdy = cy[k] - dy[k];

            let bdxcdy = bdx * cdy;
            let cdxbdy = cdx * bdy;
            let alift = adx * adx + ady * ady;

            let cdxady = cdx * ady;
            let adxcdy = adx * cdy;
            let blift = bdx * bdx + bdy * bdy;

            let adxbdy = adx * bdy;
            let bdxady = bdx * ady;
            let clift = cdx * cdx + cdy * cdy;

            let det =
                alift * (bdxcdy - cdxbdy) + blift * (cdxady - adxcdy) + clift * (adxbdy - bdxady);
            let permanent = (bdxcdy.abs() + cdxbdy.abs()) * alift
                + (cdxady.abs() + adxcdy.abs()) * blift
                + (adxbdy.abs() + bdxady.abs()) * clift;
            // Scalar stage A certifies on det > errbound || -det > errbound;
            // the complement (uncertified) is |det| <= errbound.
            let uncertified = det.abs() <= ICC_ERR_BOUND_A * permanent;
            mask |= (uncertified as u64) << j;
            out[k] = det;
        }
        let mut mm = mask;
        while mm != 0 {
            let j = mm.trailing_zeros() as usize;
            mm &= mm - 1;
            let k = k0 + j;
            out[k] = incircle(
                Point2::new(ax[k], ay[k]),
                Point2::new(bx[k], by[k]),
                Point2::new(cx[k], cy[k]),
                Point2::new(dx[k], dy[k]),
            );
            fallbacks += 1;
        }
        k0 += m;
    }
    bump_n!(INCIRCLE_BATCH, n);
    bump_n!(INCIRCLE_BATCH_FALLBACK, fallbacks);
    fallbacks
}

/// One-lane form of [`orient2d_batch`]: the same value as [`orient2d`]
/// bit-for-bit, evaluated through the batched stage-A filter semantics
/// (and counted as a batched lane under `predicate-stats`). The filter is
/// restated inline rather than routed through the slice API so single-test
/// call sites — the insert fan and cavity-repair checks fire once per
/// spoke — compile to straight-line code with no chunk machinery.
#[inline]
pub fn orient2d_one(a: Point2, b: Point2, c: Point2) -> f64 {
    let detleft = (a.x - c.x) * (b.y - c.y);
    let detright = (a.y - c.y) * (b.x - c.x);
    let det = detleft - detright;
    // Same certification test as the batch pass; see `orient2d_batch` for
    // the sign-comparison rationale (subnormal products must not falsely
    // certify).
    let same_sign = ((detleft > 0.0) & (detright > 0.0)) | ((detleft < 0.0) & (detright < 0.0));
    bump_n!(ORIENT_BATCH, 1);
    if same_sign && det.abs() < CCW_ERR_BOUND_A * (detleft.abs() + detright.abs()) {
        bump_n!(ORIENT_BATCH_FALLBACK, 1);
        return orient2d(a, b, c);
    }
    det
}

/// One-lane form of [`incircle_batch`]; same contract as [`orient2d_one`].
#[inline]
pub fn incircle_one(a: Point2, b: Point2, c: Point2, d: Point2) -> f64 {
    let adx = a.x - d.x;
    let bdx = b.x - d.x;
    let cdx = c.x - d.x;
    let ady = a.y - d.y;
    let bdy = b.y - d.y;
    let cdy = c.y - d.y;

    let bdxcdy = bdx * cdy;
    let cdxbdy = cdx * bdy;
    let alift = adx * adx + ady * ady;

    let cdxady = cdx * ady;
    let adxcdy = adx * cdy;
    let blift = bdx * bdx + bdy * bdy;

    let adxbdy = adx * bdy;
    let bdxady = bdx * ady;
    let clift = cdx * cdx + cdy * cdy;

    let det = alift * (bdxcdy - cdxbdy) + blift * (cdxady - adxcdy) + clift * (adxbdy - bdxady);
    let permanent = (bdxcdy.abs() + cdxbdy.abs()) * alift
        + (cdxady.abs() + adxcdy.abs()) * blift
        + (adxbdy.abs() + bdxady.abs()) * clift;
    bump_n!(INCIRCLE_BATCH, 1);
    if det.abs() <= ICC_ERR_BOUND_A * permanent {
        bump_n!(INCIRCLE_BATCH_FALLBACK, 1);
        return incircle(a, b, c, d);
    }
    det
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orient_basic() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(1.0, 0.0);
        let c = Point2::new(0.0, 1.0);
        assert!(orient2d(a, b, c) > 0.0);
        assert!(orient2d(a, c, b) < 0.0);
        assert_eq!(orientation(a, b, c), Orientation::Ccw);
        assert_eq!(orientation(a, c, b), Orientation::Cw);
    }

    #[test]
    fn orient_collinear_exact() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(1.0, 1.0);
        let c = Point2::new(2.0, 2.0);
        assert_eq!(orient2d(a, b, c), 0.0);
        assert_eq!(orientation(a, b, c), Orientation::Collinear);
    }

    #[test]
    fn orient_nearly_collinear_is_decided_exactly() {
        // Classic adversarial case: points on a line y = x with a tiny
        // perturbation below the rounding noise of the naive formula.
        let a = Point2::new(0.5, 0.5);
        let b = Point2::new(12.0, 12.0);
        // c is *exactly* on the line a-b.
        let c = Point2::new(24.0, 24.0);
        assert_eq!(orient2d(a, b, c), 0.0);
        // Nudge c by one ulp in y: orientation must become definite and
        // consistent with the direction of the nudge.
        let c_up = Point2::new(24.0, f64::from_bits(24.0f64.to_bits() + 1));
        let c_dn = Point2::new(24.0, f64::from_bits(24.0f64.to_bits() - 1));
        assert!(orient2d(a, b, c_up) > 0.0);
        assert!(orient2d(a, b, c_dn) < 0.0);
    }

    #[test]
    fn orient_antisymmetry_under_swap() {
        let a = Point2::new(1e-12, 1e-12);
        let b = Point2::new(1.0, 1.0 + 1e-15);
        let c = Point2::new(2.0, 2.0);
        let d1 = orient2d(a, b, c);
        let d2 = orient2d(b, a, c);
        assert_eq!(d1 > 0.0, d2 < 0.0);
    }

    #[test]
    fn incircle_basic() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(1.0, 0.0);
        let c = Point2::new(0.0, 1.0);
        // Inside the circumcircle (center (0.5, 0.5), r = sqrt(0.5)).
        assert!(incircle(a, b, c, Point2::new(0.5, 0.5)) > 0.0);
        // Far outside.
        assert!(incircle(a, b, c, Point2::new(5.0, 5.0)) < 0.0);
        // Exactly on the circle: (1, 1) is concyclic with the unit right
        // triangle.
        assert_eq!(incircle(a, b, c, Point2::new(1.0, 1.0)), 0.0);
    }

    #[test]
    fn incircle_orientation_flip() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(1.0, 0.0);
        let c = Point2::new(0.0, 1.0);
        let inside = Point2::new(0.4, 0.4);
        let pos = incircle(a, b, c, inside);
        let neg = incircle(a, c, b, inside);
        assert!(pos > 0.0);
        assert!(neg < 0.0);
    }

    #[test]
    fn incircle_cocircular_grid_points() {
        // Four corners of a square are exactly cocircular.
        let a = Point2::new(-1.0, -1.0);
        let b = Point2::new(1.0, -1.0);
        let c = Point2::new(1.0, 1.0);
        let d = Point2::new(-1.0, 1.0);
        assert_eq!(incircle(a, b, c, d), 0.0);
    }

    #[test]
    fn incircle_near_degenerate_decided_exactly() {
        // Square corners with the query point nudged by one ulp: the sign
        // must follow the nudge.
        let a = Point2::new(-1.0, -1.0);
        let b = Point2::new(1.0, -1.0);
        let c = Point2::new(1.0, 1.0);
        let inward = Point2::new(-1.0 + f64::EPSILON, 1.0 - f64::EPSILON);
        let outward = Point2::new(-1.0 - f64::EPSILON, 1.0 + f64::EPSILON);
        assert!(incircle(a, b, c, inward) > 0.0);
        assert!(incircle(a, b, c, outward) < 0.0);
    }

    #[test]
    fn orient_translation_invariance_of_sign() {
        // The adaptive predicate must give the same sign after a large
        // translation that destroys naive precision.
        let t = 1e6;
        let a = Point2::new(0.0 + t, 0.0 + t);
        let b = Point2::new(1.0 + t, 1.0 + t);
        let c = Point2::new(2.0 + t, 2.0 + t);
        assert_eq!(orient2d(a, b, c), 0.0);
    }

    #[test]
    fn ladder_matches_exact_reference_on_adversarial_inputs() {
        // Grid points scaled into ranges that force every rung of the
        // ladder: the adaptive result must agree in sign with the fully
        // exact expansion evaluation.
        let mut pts = Vec::new();
        for i in 0..6 {
            for j in 0..6 {
                let x = (i as f64) * (1.0 / 3.0) + 1.0e6;
                let y = (j as f64) * (1.0 / 3.0) + 1.0e6;
                pts.push(Point2::new(x, y));
            }
        }
        for &a in &pts[..12] {
            for &b in &pts[12..24] {
                for &c in &pts[24..] {
                    let fast = orient2d(a, b, c);
                    let exact = orient2d_exact(a, b, c);
                    assert_eq!(
                        fast.partial_cmp(&0.0),
                        exact.partial_cmp(&0.0),
                        "orient2d sign mismatch at {a:?} {b:?} {c:?}"
                    );
                    if orient2d(a, b, c) != 0.0 {
                        for &d in pts.iter().step_by(7) {
                            let (p, q, r) = if exact > 0.0 { (a, b, c) } else { (a, c, b) };
                            let fast = incircle(p, q, r, d);
                            let exact = incircle_exact(p, q, r, d);
                            assert_eq!(
                                fast.partial_cmp(&0.0),
                                exact.partial_cmp(&0.0),
                                "incircle sign mismatch at {p:?} {q:?} {r:?} {d:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn incircle_on_perturbed_circle_many_angles() {
        // Points near the unit circle: strictly-inside and strictly-outside
        // queries must be classified correctly at 1e-9 perturbations.
        let a = Point2::new(1.0, 0.0);
        let b = Point2::new(0.0, 1.0);
        let c = Point2::new(-1.0, 0.0);
        for k in 0..32 {
            let theta = 0.1 + (k as f64) * 0.19;
            let (s, co) = theta.sin_cos();
            let inside = Point2::new(co * (1.0 - 1e-9), s * (1.0 - 1e-9));
            let outside = Point2::new(co * (1.0 + 1e-9), s * (1.0 + 1e-9));
            assert!(incircle(a, b, c, inside) > 0.0, "k={k}");
            assert!(incircle(a, b, c, outside) < 0.0, "k={k}");
        }
    }
}
