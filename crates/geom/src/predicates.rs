//! Robust adaptive geometric predicates.
//!
//! `orient2d` and `incircle` are the two predicates every Delaunay algorithm
//! stands on. Both are evaluated with a cheap floating-point filter first
//! (Shewchuk's stage-A error bounds); when the filter cannot certify the
//! sign, the determinant is re-evaluated **exactly** with floating-point
//! expansions from [`crate::expansion`]. The result is therefore always the
//! sign of the exact real-arithmetic determinant.

use crate::expansion::{two_diff, Expansion};
use crate::point::Point2;

/// Machine epsilon for `f64` halved, as used in Shewchuk's bounds
/// (his `epsilon` is the rounding unit 2^-53).
const EPS: f64 = f64::EPSILON / 2.0;

/// Stage-A error bound for `orient2d`: `(3 + 16*eps) * eps`.
const CCW_ERR_BOUND_A: f64 = (3.0 + 16.0 * EPS) * EPS;

/// Stage-A error bound for `incircle`: `(10 + 96*eps) * eps`.
const ICC_ERR_BOUND_A: f64 = (10.0 + 96.0 * EPS) * EPS;

/// Orientation of the triple `(a, b, c)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orientation {
    /// `c` lies to the left of the directed line `a -> b` (counter-clockwise).
    Ccw,
    /// `c` lies to the right of the directed line `a -> b` (clockwise).
    Cw,
    /// The three points are exactly collinear.
    Collinear,
}

/// Returns a positive value if `a, b, c` are in counter-clockwise order,
/// negative if clockwise, and exactly `0.0` if collinear.
///
/// The magnitude (when nonzero) is an approximation of twice the signed
/// triangle area; only the **sign** is guaranteed exact.
pub fn orient2d(a: Point2, b: Point2, c: Point2) -> f64 {
    let detleft = (a.x - c.x) * (b.y - c.y);
    let detright = (a.y - c.y) * (b.x - c.x);
    let det = detleft - detright;

    let detsum = if detleft > 0.0 {
        if detright <= 0.0 {
            return det;
        }
        detleft + detright
    } else if detleft < 0.0 {
        if detright >= 0.0 {
            return det;
        }
        -detleft - detright
    } else {
        return det;
    };

    let errbound = CCW_ERR_BOUND_A * detsum;
    if det >= errbound || -det >= errbound {
        return det;
    }
    orient2d_exact(a, b, c)
}

/// Fully exact `orient2d` via expansion arithmetic.
///
/// The determinant expands to six exact products whose `c`-only terms
/// cancel: `ax*by - ax*cy - cx*by - ay*bx + ay*cx + cy*bx`.
fn orient2d_exact(a: Point2, b: Point2, c: Point2) -> f64 {
    let t1 = Expansion::product(a.x, b.y);
    let t2 = Expansion::product(a.x, c.y).negate();
    let t3 = Expansion::product(c.x, b.y).negate();
    let t4 = Expansion::product(a.y, b.x).negate();
    let t5 = Expansion::product(a.y, c.x);
    let t6 = Expansion::product(c.y, b.x);
    let det = t1.add(&t2).add(&t3).add(&t4).add(&t5).add(&t6);
    let s = det.sign();
    if s == 0.0 {
        0.0
    } else {
        // Preserve an order-of-magnitude estimate with the exact sign.
        let approx = det.approx();
        if approx != 0.0 && approx.signum() == s {
            approx
        } else {
            s * f64::MIN_POSITIVE
        }
    }
}

/// Classified orientation of `(a, b, c)`.
#[inline]
pub fn orientation(a: Point2, b: Point2, c: Point2) -> Orientation {
    let d = orient2d(a, b, c);
    if d > 0.0 {
        Orientation::Ccw
    } else if d < 0.0 {
        Orientation::Cw
    } else {
        Orientation::Collinear
    }
}

/// Returns a positive value if `d` lies strictly inside the circle through
/// `a, b, c` (which must be in counter-clockwise order), negative if
/// strictly outside, and exactly `0.0` if the four points are concyclic.
///
/// If `a, b, c` are clockwise the sign is flipped, matching the standard
/// determinant convention.
pub fn incircle(a: Point2, b: Point2, c: Point2, d: Point2) -> f64 {
    let adx = a.x - d.x;
    let bdx = b.x - d.x;
    let cdx = c.x - d.x;
    let ady = a.y - d.y;
    let bdy = b.y - d.y;
    let cdy = c.y - d.y;

    let bdxcdy = bdx * cdy;
    let cdxbdy = cdx * bdy;
    let alift = adx * adx + ady * ady;

    let cdxady = cdx * ady;
    let adxcdy = adx * cdy;
    let blift = bdx * bdx + bdy * bdy;

    let adxbdy = adx * bdy;
    let bdxady = bdx * ady;
    let clift = cdx * cdx + cdy * cdy;

    let det = alift * (bdxcdy - cdxbdy) + blift * (cdxady - adxcdy) + clift * (adxbdy - bdxady);

    let permanent = (bdxcdy.abs() + cdxbdy.abs()) * alift
        + (cdxady.abs() + adxcdy.abs()) * blift
        + (adxbdy.abs() + bdxady.abs()) * clift;
    let errbound = ICC_ERR_BOUND_A * permanent;
    if det > errbound || -det > errbound {
        return det;
    }
    incircle_exact(a, b, c, d)
}

/// Fully exact `incircle` via expansion arithmetic.
///
/// The differences `a - d` etc. are captured exactly with `two_diff` (each
/// becomes a <=2-component expansion); all subsequent products and sums use
/// exact expansion arithmetic, so the returned sign is exact.
fn incircle_exact(a: Point2, b: Point2, c: Point2, d: Point2) -> f64 {
    let exp_diff = |p: f64, q: f64| {
        let (hi, lo) = two_diff(p, q);
        let mut e = Expansion::from_f64(lo);
        e = e.add(&Expansion::from_f64(hi));
        e
    };
    let adx = exp_diff(a.x, d.x);
    let ady = exp_diff(a.y, d.y);
    let bdx = exp_diff(b.x, d.x);
    let bdy = exp_diff(b.y, d.y);
    let cdx = exp_diff(c.x, d.x);
    let cdy = exp_diff(c.y, d.y);

    let alift = adx.mul(&adx).add(&ady.mul(&ady));
    let blift = bdx.mul(&bdx).add(&bdy.mul(&bdy));
    let clift = cdx.mul(&cdx).add(&cdy.mul(&cdy));

    let bc = bdx.mul(&cdy).sub(&cdx.mul(&bdy));
    let ca = cdx.mul(&ady).sub(&adx.mul(&cdy));
    let ab = adx.mul(&bdy).sub(&bdx.mul(&ady));

    let det = alift.mul(&bc).add(&blift.mul(&ca)).add(&clift.mul(&ab));
    let s = det.sign();
    if s == 0.0 {
        0.0
    } else {
        let approx = det.approx();
        if approx != 0.0 && approx.signum() == s {
            approx
        } else {
            s * f64::MIN_POSITIVE
        }
    }
}

/// `true` when `d` is strictly inside the circumcircle of the CCW triangle
/// `(a, b, c)`.
#[inline]
pub fn in_circle(a: Point2, b: Point2, c: Point2, d: Point2) -> bool {
    incircle(a, b, c, d) > 0.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orient_basic() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(1.0, 0.0);
        let c = Point2::new(0.0, 1.0);
        assert!(orient2d(a, b, c) > 0.0);
        assert!(orient2d(a, c, b) < 0.0);
        assert_eq!(orientation(a, b, c), Orientation::Ccw);
        assert_eq!(orientation(a, c, b), Orientation::Cw);
    }

    #[test]
    fn orient_collinear_exact() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(1.0, 1.0);
        let c = Point2::new(2.0, 2.0);
        assert_eq!(orient2d(a, b, c), 0.0);
        assert_eq!(orientation(a, b, c), Orientation::Collinear);
    }

    #[test]
    fn orient_nearly_collinear_is_decided_exactly() {
        // Classic adversarial case: points on a line y = x with a tiny
        // perturbation below the rounding noise of the naive formula.
        let a = Point2::new(0.5, 0.5);
        let b = Point2::new(12.0, 12.0);
        // c is *exactly* on the line a-b.
        let c = Point2::new(24.0, 24.0);
        assert_eq!(orient2d(a, b, c), 0.0);
        // Nudge c by one ulp in y: orientation must become definite and
        // consistent with the direction of the nudge.
        let c_up = Point2::new(24.0, f64::from_bits(24.0f64.to_bits() + 1));
        let c_dn = Point2::new(24.0, f64::from_bits(24.0f64.to_bits() - 1));
        assert!(orient2d(a, b, c_up) > 0.0);
        assert!(orient2d(a, b, c_dn) < 0.0);
    }

    #[test]
    fn orient_antisymmetry_under_swap() {
        let a = Point2::new(1e-12, 1e-12);
        let b = Point2::new(1.0, 1.0 + 1e-15);
        let c = Point2::new(2.0, 2.0);
        let d1 = orient2d(a, b, c);
        let d2 = orient2d(b, a, c);
        assert_eq!(d1 > 0.0, d2 < 0.0);
    }

    #[test]
    fn incircle_basic() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(1.0, 0.0);
        let c = Point2::new(0.0, 1.0);
        // Inside the circumcircle (center (0.5, 0.5), r = sqrt(0.5)).
        assert!(incircle(a, b, c, Point2::new(0.5, 0.5)) > 0.0);
        // Far outside.
        assert!(incircle(a, b, c, Point2::new(5.0, 5.0)) < 0.0);
        // Exactly on the circle: (1, 1) is concyclic with the unit right
        // triangle.
        assert_eq!(incircle(a, b, c, Point2::new(1.0, 1.0)), 0.0);
    }

    #[test]
    fn incircle_orientation_flip() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(1.0, 0.0);
        let c = Point2::new(0.0, 1.0);
        let inside = Point2::new(0.4, 0.4);
        let pos = incircle(a, b, c, inside);
        let neg = incircle(a, c, b, inside);
        assert!(pos > 0.0);
        assert!(neg < 0.0);
    }

    #[test]
    fn incircle_cocircular_grid_points() {
        // Four corners of a square are exactly cocircular.
        let a = Point2::new(-1.0, -1.0);
        let b = Point2::new(1.0, -1.0);
        let c = Point2::new(1.0, 1.0);
        let d = Point2::new(-1.0, 1.0);
        assert_eq!(incircle(a, b, c, d), 0.0);
    }

    #[test]
    fn incircle_near_degenerate_decided_exactly() {
        // Square corners with the query point nudged by one ulp: the sign
        // must follow the nudge.
        let a = Point2::new(-1.0, -1.0);
        let b = Point2::new(1.0, -1.0);
        let c = Point2::new(1.0, 1.0);
        let inward = Point2::new(-1.0 + f64::EPSILON, 1.0 - f64::EPSILON);
        let outward = Point2::new(-1.0 - f64::EPSILON, 1.0 + f64::EPSILON);
        assert!(incircle(a, b, c, inward) > 0.0);
        assert!(incircle(a, b, c, outward) < 0.0);
    }

    #[test]
    fn orient_translation_invariance_of_sign() {
        // The adaptive predicate must give the same sign after a large
        // translation that destroys naive precision.
        let t = 1e6;
        let a = Point2::new(0.0 + t, 0.0 + t);
        let b = Point2::new(1.0 + t, 1.0 + t);
        let c = Point2::new(2.0 + t, 2.0 + t);
        assert_eq!(orient2d(a, b, c), 0.0);
    }

    #[test]
    fn incircle_on_perturbed_circle_many_angles() {
        // Points near the unit circle: strictly-inside and strictly-outside
        // queries must be classified correctly at 1e-9 perturbations.
        let a = Point2::new(1.0, 0.0);
        let b = Point2::new(0.0, 1.0);
        let c = Point2::new(-1.0, 0.0);
        for k in 0..32 {
            let theta = 0.1 + (k as f64) * 0.19;
            let (s, co) = theta.sin_cos();
            let inside = Point2::new(co * (1.0 - 1e-9), s * (1.0 - 1e-9));
            let outside = Point2::new(co * (1.0 + 1e-9), s * (1.0 + 1e-9));
            assert!(incircle(a, b, c, inside) > 0.0, "k={k}");
            assert!(incircle(a, b, c, outside) < 0.0, "k={k}");
        }
    }
}
