//! # adm-geom — computational-geometry substrate
//!
//! Foundation crate of the `adm2d` workspace (ICPP 2016 anisotropic
//! Delaunay reproduction): exact-adaptive predicates, segments, bounding
//! boxes with Cohen–Sutherland clipping, the alternating digital tree used
//! to prune boundary-layer ray intersections, and monotone-chain convex
//! hulls that drive the projection-based parallel triangulation.
//!
//! Everything is `f64`, allocation-light, and exact where topology depends
//! on it: `orient2d`/`incircle` fall back to floating-point expansion
//! arithmetic, so all downstream Delaunay decisions are made on exact
//! signs.

pub mod aabb;
pub mod adt;
pub mod expansion;
pub mod hull;
pub mod metric;
pub mod point;
pub mod polygon;
pub mod predicates;
pub mod pslg;
pub mod pslg_gen;
pub mod segment;

pub use aabb::Aabb;
pub use adt::{extent_key, Adt, Point4};
pub use hull::{convex_hull, lower_hull_indices_sorted, lower_hull_sorted};
pub use metric::{Metric2, MetricField};
pub use point::{Point2, Vec2};
pub use predicates::{
    in_circle, incircle, incircle_batch, incircle_one, orient2d, orient2d_batch, orient2d_one,
    orientation, Orientation,
};
pub use pslg::{Pslg, PslgError, RepairReport, ValidPslg};
pub use pslg_gen::{generate_pslg, GeneratedPslg};
pub use segment::{SegIntersection, Segment};
