//! Line segments and exact segment intersection.
//!
//! Intersection *detection* uses the robust predicates, so topological
//! decisions (does this ray cross that border?) are exact. Intersection
//! *points* are computed in floating point — they are only used to clamp
//! boundary-layer point insertion, where an ulp of error is harmless.

use crate::point::Point2;
use crate::predicates::{orient2d, orient2d_batch};

/// A directed line segment from `a` to `b`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    pub a: Point2,
    pub b: Point2,
}

/// Result of intersecting two segments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SegIntersection {
    /// The segments do not touch.
    None,
    /// The segments cross (or touch) at a single point.
    Point(Point2),
    /// The segments are collinear and overlap along a sub-segment.
    Overlap(Point2, Point2),
}

impl Segment {
    /// Creates a segment from its endpoints.
    #[inline]
    pub const fn new(a: Point2, b: Point2) -> Self {
        Segment { a, b }
    }

    /// Segment length.
    #[inline]
    pub fn length(&self) -> f64 {
        self.a.distance(self.b)
    }

    /// Midpoint of the segment.
    #[inline]
    pub fn midpoint(&self) -> Point2 {
        self.a.midpoint(self.b)
    }

    /// Point at parameter `t` (0 at `a`, 1 at `b`).
    #[inline]
    pub fn at(&self, t: f64) -> Point2 {
        self.a.lerp(self.b, t)
    }

    /// `true` when `p` lies on the segment (inclusive of endpoints),
    /// decided with the exact orientation predicate plus bounding checks.
    pub fn contains_point(&self, p: Point2) -> bool {
        if orient2d(self.a, self.b, p) != 0.0 {
            return false;
        }
        let (minx, maxx) = minmax(self.a.x, self.b.x);
        let (miny, maxy) = minmax(self.a.y, self.b.y);
        p.x >= minx && p.x <= maxx && p.y >= miny && p.y <= maxy
    }

    /// Squared distance from `p` to the closest point on the segment.
    pub fn distance_sq_to_point(&self, p: Point2) -> f64 {
        let ab = self.a.to(self.b);
        let ap = self.a.to(p);
        let len_sq = ab.norm_sq();
        if len_sq == 0.0 {
            return ap.norm_sq();
        }
        let t = (ap.dot(ab) / len_sq).clamp(0.0, 1.0);
        p.distance_sq(self.at(t))
    }

    /// Distance from `p` to the closest point on the segment.
    #[inline]
    pub fn distance_to_point(&self, p: Point2) -> f64 {
        self.distance_sq_to_point(p).sqrt()
    }

    /// Exact test: do the two segments share at least one point?
    ///
    /// Uses only orientation signs — no constructed coordinates — so it is
    /// robust for touching, collinear, and shared-endpoint configurations.
    pub fn intersects(&self, other: &Segment) -> bool {
        let [d1, d2, d3, d4] = self.cross_signs(other);

        if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
            && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
        {
            return true;
        }
        (d1 == 0.0 && other.contains_point_collinear(self.a))
            || (d2 == 0.0 && other.contains_point_collinear(self.b))
            || (d3 == 0.0 && self.contains_point_collinear(other.a))
            || (d4 == 0.0 && self.contains_point_collinear(other.b))
    }

    /// Exact test: do the segments cross at a point interior to **both**?
    /// Touching at endpoints or collinear overlap does not count.
    pub fn properly_intersects(&self, other: &Segment) -> bool {
        let [d1, d2, d3, d4] = self.cross_signs(other);
        ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
            && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
    }

    /// The four orientation signs every intersection query starts from
    /// (`self` endpoints against `other`, then `other` endpoints against
    /// `self`), evaluated through one 4-lane batched stage-A pass.
    #[inline]
    fn cross_signs(&self, other: &Segment) -> [f64; 4] {
        let mut d = [0.0f64; 4];
        orient2d_batch(
            &[other.a.x, other.a.x, self.a.x, self.a.x],
            &[other.a.y, other.a.y, self.a.y, self.a.y],
            &[other.b.x, other.b.x, self.b.x, self.b.x],
            &[other.b.y, other.b.y, self.b.y, self.b.y],
            &[self.a.x, self.b.x, other.a.x, other.b.x],
            &[self.a.y, self.b.y, other.a.y, other.b.y],
            &mut d,
        );
        d
    }

    /// Bounding-range containment assuming `p` is already known collinear.
    #[inline]
    fn contains_point_collinear(&self, p: Point2) -> bool {
        let (minx, maxx) = minmax(self.a.x, self.b.x);
        let (miny, maxy) = minmax(self.a.y, self.b.y);
        p.x >= minx && p.x <= maxx && p.y >= miny && p.y <= maxy
    }

    /// Full intersection classification with a constructed point for the
    /// crossing case. Detection is exact; the crossing coordinates carry
    /// ordinary floating-point rounding.
    pub fn intersection(&self, other: &Segment) -> SegIntersection {
        let [d1, d2, d3, d4] = self.cross_signs(other);

        // Collinear configurations.
        if d1 == 0.0 && d2 == 0.0 && d3 == 0.0 && d4 == 0.0 {
            return self.collinear_overlap(other);
        }

        let proper = ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
            && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0));
        if proper {
            // Solve for the crossing parameter on `self` using the signed
            // areas, which is numerically stable for proper crossings.
            let t = d1 / (d1 - d2);
            return SegIntersection::Point(self.at(t));
        }

        // Endpoint-touching cases.
        if d1 == 0.0 && other.contains_point_collinear(self.a) {
            return SegIntersection::Point(self.a);
        }
        if d2 == 0.0 && other.contains_point_collinear(self.b) {
            return SegIntersection::Point(self.b);
        }
        if d3 == 0.0 && self.contains_point_collinear(other.a) {
            return SegIntersection::Point(other.a);
        }
        if d4 == 0.0 && self.contains_point_collinear(other.b) {
            return SegIntersection::Point(other.b);
        }
        SegIntersection::None
    }

    /// Overlap of two segments already known to be collinear.
    fn collinear_overlap(&self, other: &Segment) -> SegIntersection {
        // Project onto the dominant axis to order the endpoints.
        let dx = (self.b.x - self.a.x)
            .abs()
            .max((other.b.x - other.a.x).abs());
        let dy = (self.b.y - self.a.y)
            .abs()
            .max((other.b.y - other.a.y).abs());
        let key = |p: Point2| if dx >= dy { p.x } else { p.y };

        let (s0, s1) = order_by(self.a, self.b, key);
        let (o0, o1) = order_by(other.a, other.b, key);
        let lo = if key(s0) >= key(o0) { s0 } else { o0 };
        let hi = if key(s1) <= key(o1) { s1 } else { o1 };
        if key(lo) > key(hi) {
            SegIntersection::None
        } else if key(lo) == key(hi) {
            SegIntersection::Point(lo)
        } else {
            SegIntersection::Overlap(lo, hi)
        }
    }
}

#[inline]
fn minmax(a: f64, b: f64) -> (f64, f64) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[inline]
fn order_by(a: Point2, b: Point2, key: impl Fn(Point2) -> f64) -> (Point2, Point2) {
    if key(a) <= key(b) {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point2::new(ax, ay), Point2::new(bx, by))
    }

    #[test]
    fn proper_crossing() {
        let s = seg(0.0, 0.0, 1.0, 1.0);
        let t = seg(0.0, 1.0, 1.0, 0.0);
        assert!(s.intersects(&t));
        assert!(s.properly_intersects(&t));
        match s.intersection(&t) {
            SegIntersection::Point(p) => {
                assert!((p.x - 0.5).abs() < 1e-15);
                assert!((p.y - 0.5).abs() < 1e-15);
            }
            other => panic!("expected point, got {other:?}"),
        }
    }

    #[test]
    fn disjoint() {
        let s = seg(0.0, 0.0, 1.0, 0.0);
        let t = seg(0.0, 1.0, 1.0, 1.0);
        assert!(!s.intersects(&t));
        assert_eq!(s.intersection(&t), SegIntersection::None);
    }

    #[test]
    fn shared_endpoint_is_improper() {
        let s = seg(0.0, 0.0, 1.0, 0.0);
        let t = seg(1.0, 0.0, 2.0, 1.0);
        assert!(s.intersects(&t));
        assert!(!s.properly_intersects(&t));
        assert_eq!(
            s.intersection(&t),
            SegIntersection::Point(Point2::new(1.0, 0.0))
        );
    }

    #[test]
    fn t_junction_touch() {
        let s = seg(0.0, 0.0, 2.0, 0.0);
        let t = seg(1.0, 0.0, 1.0, 1.0);
        assert!(s.intersects(&t));
        assert!(!s.properly_intersects(&t));
        assert_eq!(
            s.intersection(&t),
            SegIntersection::Point(Point2::new(1.0, 0.0))
        );
    }

    #[test]
    fn collinear_overlap() {
        let s = seg(0.0, 0.0, 2.0, 0.0);
        let t = seg(1.0, 0.0, 3.0, 0.0);
        assert!(s.intersects(&t));
        match s.intersection(&t) {
            SegIntersection::Overlap(a, b) => {
                assert_eq!(a, Point2::new(1.0, 0.0));
                assert_eq!(b, Point2::new(2.0, 0.0));
            }
            other => panic!("expected overlap, got {other:?}"),
        }
    }

    #[test]
    fn collinear_touching_at_point() {
        let s = seg(0.0, 0.0, 1.0, 0.0);
        let t = seg(1.0, 0.0, 2.0, 0.0);
        assert_eq!(
            s.intersection(&t),
            SegIntersection::Point(Point2::new(1.0, 0.0))
        );
    }

    #[test]
    fn collinear_disjoint() {
        let s = seg(0.0, 0.0, 1.0, 0.0);
        let t = seg(2.0, 0.0, 3.0, 0.0);
        assert!(!s.intersects(&t));
        assert_eq!(s.intersection(&t), SegIntersection::None);
    }

    #[test]
    fn vertical_collinear_overlap() {
        let s = seg(0.0, 0.0, 0.0, 2.0);
        let t = seg(0.0, 1.0, 0.0, 5.0);
        match s.intersection(&t) {
            SegIntersection::Overlap(a, b) => {
                assert_eq!(a, Point2::new(0.0, 1.0));
                assert_eq!(b, Point2::new(0.0, 2.0));
            }
            other => panic!("expected overlap, got {other:?}"),
        }
    }

    #[test]
    fn contains_point() {
        let s = seg(0.0, 0.0, 2.0, 2.0);
        assert!(s.contains_point(Point2::new(1.0, 1.0)));
        assert!(s.contains_point(Point2::new(0.0, 0.0)));
        assert!(!s.contains_point(Point2::new(3.0, 3.0)));
        assert!(!s.contains_point(Point2::new(1.0, 1.0 + 1e-12)));
    }

    #[test]
    fn point_distance() {
        let s = seg(0.0, 0.0, 2.0, 0.0);
        assert_eq!(s.distance_to_point(Point2::new(1.0, 3.0)), 3.0);
        assert_eq!(s.distance_to_point(Point2::new(-3.0, 4.0)), 5.0);
        assert_eq!(s.distance_to_point(Point2::new(1.0, 0.0)), 0.0);
    }

    #[test]
    fn near_miss_is_exact() {
        // Segment endpoints exactly on the line of another segment but just
        // past the end: must not report an intersection.
        let s = seg(0.0, 0.0, 1.0, 1.0);
        let t = seg(1.0 + f64::EPSILON * 2.0, 1.0 + f64::EPSILON * 2.0, 2.0, 0.0);
        assert!(!s.intersects(&t));
    }
}
