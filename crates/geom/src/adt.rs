//! Alternating digital tree (ADT) for geometric intersection searching.
//!
//! Following Bonet & Peraire (1991) and the paper's §II.B: a 2-D segment's
//! *extent box* `(xmin, ymin, xmax, ymax)` is projected to a point in 4-D
//! space. Two extent boxes intersect iff the 4-D point of one lies inside a
//! 4-D hyperbox derived from the other, so "which of these n segments might
//! intersect mine" becomes a hyperbox range search, answered in `O(log n)`
//! expected time per query.
//!
//! The tree is *digital*: the splitting coordinate alternates with depth
//! (`depth mod 4`) and the splitting plane is the midpoint of the node's
//! inherited region, not a data-dependent median — so no rebalancing is
//! needed and insertion is cheap.

use crate::aabb::Aabb;
use crate::segment::Segment;

/// A point in the 4-D extent space.
pub type Point4 = [f64; 4];

const DIMS: usize = 4;

#[derive(Debug, Clone)]
struct Node {
    key: Point4,
    /// Caller-supplied identifier (e.g. ray index).
    id: usize,
    children: [Option<u32>; 2],
}

/// An alternating digital tree over 4-D points.
#[derive(Debug, Clone)]
pub struct Adt {
    nodes: Vec<Node>,
    root: Option<u32>,
    /// Global region in which all keys must lie; fixed at construction.
    lo: Point4,
    hi: Point4,
}

impl Adt {
    /// Creates an empty tree whose keys will all lie inside the 4-D region
    /// `[lo, hi]`. For segment extent boxes, use
    /// [`Adt::for_domain`] which derives the region from a 2-D bounding box.
    pub fn new(lo: Point4, hi: Point4) -> Self {
        Adt {
            nodes: Vec::new(),
            root: None,
            lo,
            hi,
        }
    }

    /// Tree for segment extent boxes drawn from the 2-D domain `domain`.
    pub fn for_domain(domain: &Aabb) -> Self {
        let lo = [domain.min.x, domain.min.y, domain.min.x, domain.min.y];
        let hi = [domain.max.x, domain.max.y, domain.max.x, domain.max.y];
        Adt::new(lo, hi)
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when no key is stored.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Inserts a 4-D key with an associated id.
    ///
    /// Keys outside the construction region are clamped for the purpose of
    /// choosing a branch (queries stay correct because the node key itself
    /// is compared exactly; only the *region* bisection uses the clamp).
    pub fn insert(&mut self, key: Point4, id: usize) {
        let new_index = self.nodes.len() as u32;
        self.nodes.push(Node {
            key,
            id,
            children: [None, None],
        });
        let Some(mut cur) = self.root else {
            self.root = Some(new_index);
            return;
        };
        let (mut lo, mut hi) = (self.lo, self.hi);
        let mut depth = 0usize;
        loop {
            let dim = depth % DIMS;
            let mid = 0.5 * (lo[dim] + hi[dim]);
            let k = key[dim].clamp(self.lo[dim], self.hi[dim]);
            let side = usize::from(k >= mid);
            if side == 0 {
                hi[dim] = mid;
            } else {
                lo[dim] = mid;
            }
            match self.nodes[cur as usize].children[side] {
                Some(next) => cur = next,
                None => {
                    self.nodes[cur as usize].children[side] = Some(new_index);
                    return;
                }
            }
            depth += 1;
        }
    }

    /// Inserts the extent box of a segment.
    pub fn insert_segment(&mut self, seg: &Segment, id: usize) {
        self.insert(extent_key(seg), id);
    }

    /// Collects the ids of all stored keys lying inside the closed 4-D
    /// hyperbox `[qlo, qhi]`.
    pub fn query(&self, qlo: Point4, qhi: Point4, out: &mut Vec<usize>) {
        let Some(root) = self.root else { return };
        // Explicit stack of (node, depth, region) to avoid recursion depth
        // limits on adversarial insertion orders.
        let mut stack = vec![(root, 0usize, self.lo, self.hi)];
        while let Some((idx, depth, lo, hi)) = stack.pop() {
            let node = &self.nodes[idx as usize];
            if key_in_box(&node.key, &qlo, &qhi) {
                out.push(node.id);
            }
            let dim = depth % DIMS;
            let mid = 0.5 * (lo[dim] + hi[dim]);
            // Left child region: [lo, hi] with hi[dim] = mid.
            if let Some(l) = node.children[0] {
                if qlo[dim] <= mid {
                    let mut h = hi;
                    h[dim] = mid;
                    stack.push((l, depth + 1, lo, h));
                }
            }
            // Right child region: [lo, hi] with lo[dim] = mid.
            if let Some(r) = node.children[1] {
                if qhi[dim] >= mid {
                    let mut l = lo;
                    l[dim] = mid;
                    stack.push((r, depth + 1, l, hi));
                }
            }
        }
    }

    /// Ids of stored segments whose extent boxes intersect the extent box
    /// of `seg`. This is the pruning query from §II.B: a superset of the
    /// true intersections, to be confirmed with exact segment tests.
    pub fn query_segment(&self, seg: &Segment, out: &mut Vec<usize>) {
        let b = Aabb::of_segment(seg);
        // Stored (xmin, ymin, xmax, ymax) intersects query box iff:
        //   xmin <= q.max.x, ymin <= q.max.y, xmax >= q.min.x, ymax >= q.min.y
        let qlo = [f64::NEG_INFINITY, f64::NEG_INFINITY, b.min.x, b.min.y];
        let qhi = [b.max.x, b.max.y, f64::INFINITY, f64::INFINITY];
        self.query(qlo, qhi, out);
    }
}

/// Extent-box key of a segment: `(xmin, ymin, xmax, ymax)` as a 4-D point.
#[inline]
pub fn extent_key(seg: &Segment) -> Point4 {
    let b = Aabb::of_segment(seg);
    [b.min.x, b.min.y, b.max.x, b.max.y]
}

#[inline]
fn key_in_box(key: &Point4, lo: &Point4, hi: &Point4) -> bool {
    (0..DIMS).all(|d| key[d] >= lo[d] && key[d] <= hi[d])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point2;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point2::new(ax, ay), Point2::new(bx, by))
    }

    fn domain() -> Aabb {
        Aabb::new(Point2::new(-10.0, -10.0), Point2::new(10.0, 10.0))
    }

    /// Brute-force reference: ids of segments whose AABB intersects `q`'s.
    fn brute(segs: &[Segment], q: &Segment) -> Vec<usize> {
        let qb = Aabb::of_segment(q);
        let mut ids: Vec<usize> = segs
            .iter()
            .enumerate()
            .filter(|(_, s)| Aabb::of_segment(s).intersects(&qb))
            .map(|(i, _)| i)
            .collect();
        ids.sort_unstable();
        ids
    }

    #[test]
    fn empty_tree_returns_nothing() {
        let t = Adt::for_domain(&domain());
        let mut out = vec![];
        t.query_segment(&seg(0.0, 0.0, 1.0, 1.0), &mut out);
        assert!(out.is_empty());
        assert!(t.is_empty());
    }

    #[test]
    fn single_segment_hit_and_miss() {
        let mut t = Adt::for_domain(&domain());
        t.insert_segment(&seg(0.0, 0.0, 1.0, 1.0), 7);
        let mut out = vec![];
        t.query_segment(&seg(0.5, -1.0, 0.5, 2.0), &mut out);
        assert_eq!(out, vec![7]);
        out.clear();
        t.query_segment(&seg(5.0, 5.0, 6.0, 6.0), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn touching_extent_boxes_are_reported() {
        let mut t = Adt::for_domain(&domain());
        t.insert_segment(&seg(0.0, 0.0, 1.0, 0.0), 0);
        let mut out = vec![];
        // Extent boxes share only the point (1, 0).
        t.query_segment(&seg(1.0, 0.0, 2.0, 0.0), &mut out);
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn matches_brute_force_on_random_segments() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut segs = Vec::new();
        for _ in 0..300 {
            let ax = rng.gen_range(-9.0..9.0);
            let ay = rng.gen_range(-9.0..9.0);
            let bx = ax + rng.gen_range(-1.0..1.0);
            let by = ay + rng.gen_range(-1.0..1.0);
            segs.push(seg(ax, ay, bx, by));
        }
        let mut t = Adt::for_domain(&domain());
        for (i, s) in segs.iter().enumerate() {
            t.insert_segment(s, i);
        }
        for qi in (0..segs.len()).step_by(17) {
            let mut got = vec![];
            t.query_segment(&segs[qi], &mut got);
            got.sort_unstable();
            assert_eq!(got, brute(&segs, &segs[qi]), "query {qi}");
        }
    }

    #[test]
    fn keys_outside_domain_are_still_found() {
        // The domain only guides region bisection; out-of-range keys must
        // still be retrievable.
        let mut t = Adt::for_domain(&domain());
        t.insert_segment(&seg(50.0, 50.0, 51.0, 51.0), 3);
        let mut out = vec![];
        t.query_segment(&seg(49.0, 49.0, 52.0, 52.0), &mut out);
        assert_eq!(out, vec![3]);
    }

    #[test]
    fn many_identical_keys() {
        let mut t = Adt::for_domain(&domain());
        for i in 0..20 {
            t.insert_segment(&seg(1.0, 1.0, 2.0, 2.0), i);
        }
        let mut out = vec![];
        t.query_segment(&seg(1.5, 1.5, 1.6, 1.6), &mut out);
        out.sort_unstable();
        assert_eq!(out, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn query_prunes_subtrees() {
        // Structural sanity: after inserting well-separated clusters, a
        // query in one cluster returns exactly that cluster.
        let mut t = Adt::for_domain(&domain());
        for i in 0..10 {
            let x = -9.0 + 0.05 * i as f64;
            t.insert_segment(&seg(x, -9.0, x + 0.02, -8.9), i);
        }
        for i in 0..10 {
            let x = 8.0 + 0.05 * i as f64;
            t.insert_segment(&seg(x, 8.0, x + 0.02, 8.1), 100 + i);
        }
        let mut out = vec![];
        t.query_segment(&seg(-9.5, -9.5, -8.0, -8.5), &mut out);
        out.sort_unstable();
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }
}
