//! Seeded adversarial PSLG generator for the robustness fuzz gate.
//!
//! Produces small multi-part domains from a single `u64` seed, seasoned
//! with exactly the configurations that break naive mesh generators:
//! exactly-collinear constraint chains, vertices lying exactly on
//! segments, near-degenerate vertices a few ulps off a constrained edge,
//! duplicate points and segments, parts touching at a shared corner, and
//! open constraint chains inside the domain. A tagged fraction of seeds
//! deliberately emits a proper segment crossing to exercise the typed
//! rejection path.
//!
//! Construction guarantees:
//! * when [`GeneratedPslg::expect_reject`] is `false`, the PSLG passes
//!   [`Pslg::validate`](crate::pslg::Pslg::validate) (possibly with
//!   repairs) — every part lives in its own grid cell, holes and chains
//!   in disjoint sub-boxes, so nothing can cross;
//! * all deliberate input angles are ≥ 90° (rectangles, 135° chamfers),
//!   keeping the domain inside Ruppert's provable-termination class;
//! * coordinates are dyadic rationals, so the collinear seasonings are
//!   *exactly* collinear in f64 (asserted with the robust predicate).
//!
//! The generator is deterministic and dependency-free (splitmix64), so a
//! failing case is fully reproduced by its seed.

use crate::point::Point2;
use crate::predicates::orient2d;
use crate::pslg::Pslg;

/// One generated fuzz case.
#[derive(Debug, Clone)]
pub struct GeneratedPslg {
    /// The domain.
    pub pslg: Pslg,
    /// `true` when the generator planted a proper segment crossing —
    /// validation must reject with `PslgError::SegmentsCross`.
    pub expect_reject: bool,
    /// The seed that produced this case (for reproduction).
    pub seed: u64,
}

/// splitmix64: tiny, stable, seedable.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, n)`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    /// Dyadic rational in `[0, 1)` with 1/64 resolution.
    fn dyadic(&mut self) -> f64 {
        self.below(64) as f64 / 64.0
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

/// Builder state while assembling one case.
struct Build {
    points: Vec<Point2>,
    segments: Vec<(u32, u32)>,
    holes: Vec<Point2>,
}

impl Build {
    fn push_loop(&mut self, loop_pts: &[Point2]) {
        let base = self.points.len() as u32;
        self.points.extend_from_slice(loop_pts);
        let n = loop_pts.len() as u32;
        for i in 0..n {
            self.segments.push((base + i, base + (i + 1) % n));
        }
    }
}

/// An axis-aligned rectangle with optional 135° chamfers, on dyadic
/// coordinates. `cut` of 0 gives the plain rectangle.
fn chamfered_rect(x0: f64, y0: f64, w: f64, h: f64, cut: f64) -> Vec<Point2> {
    let p = Point2::new;
    if cut == 0.0 {
        vec![p(x0, y0), p(x0 + w, y0), p(x0 + w, y0 + h), p(x0, y0 + h)]
    } else {
        vec![
            p(x0 + cut, y0),
            p(x0 + w - cut, y0),
            p(x0 + w, y0 + cut),
            p(x0 + w, y0 + h - cut),
            p(x0 + w - cut, y0 + h),
            p(x0 + cut, y0 + h),
            p(x0, y0 + h - cut),
            p(x0, y0 + cut),
        ]
    }
}

/// Subdivides segment index `si` at exactly-collinear interior points.
/// Every candidate is verified with the exact predicate; rounding that
/// breaks collinearity skips the candidate instead of emitting an
/// almost-collinear chain by accident.
fn subdivide_collinear(b: &mut Build, si: usize, pieces: u64) {
    let (a, c) = b.segments[si];
    let (pa, pc) = (b.points[a as usize], b.points[c as usize]);
    let mut chain = vec![a];
    for k in 1..pieces {
        let t = k as f64 / pieces as f64;
        let q = pa.lerp(pc, t);
        if orient2d(pa, pc, q) != 0.0 || q == pa || q == pc {
            continue;
        }
        let id = b.points.len() as u32;
        b.points.push(q);
        chain.push(id);
    }
    chain.push(c);
    if chain.len() > 2 {
        b.segments.remove(si);
        for w in chain.windows(2) {
            b.segments.push((w[0], w[1]));
        }
    }
}

/// Generates one fuzz case from a seed. Roughly 1 in 8 seeds plants a
/// proper crossing (`expect_reject`); the rest are valid by construction.
pub fn generate_pslg(seed: u64) -> GeneratedPslg {
    let mut rng = Rng(seed);
    let mut b = Build {
        points: Vec::new(),
        segments: Vec::new(),
        holes: Vec::new(),
    };

    let parts = 1 + rng.below(3); // 1..=3 parts, one per 8-unit grid cell
    let mut prev_corner: Option<Point2> = None;
    for part in 0..parts {
        let cell_x = part as f64 * 8.0;
        // Part body: 3..6 units wide/tall inside the cell, dyadic origin.
        let w = 3.0 + rng.dyadic() * 2.0;
        let h = 3.0 + rng.dyadic() * 2.0;
        let (x0, y0) = match prev_corner {
            // Touching parts: this part's lower-left corner is exactly the
            // previous part's lower-right corner.
            Some(c) if rng.chance(30) => (c.x, c.y),
            _ => (cell_x + rng.dyadic(), rng.dyadic()),
        };
        let cut = if rng.chance(40) { 0.5 } else { 0.0 };
        let outline = chamfered_rect(x0, y0, w, h, cut);
        b.push_loop(&outline);
        prev_corner = Some(Point2::new(x0 + w, y0));

        // Interior sub-boxes: hole in the left half, open chain in the
        // right half — disjoint by construction, ≥ 1 unit from the
        // outline (cut ≤ 0.5 keeps chamfers clear of both).
        let (cx, cy) = (x0 + w / 2.0, y0 + h / 2.0);
        if rng.chance(55) {
            let hw = 0.5 + rng.dyadic() * 0.5;
            let hole = chamfered_rect(x0 + 1.0, cy - hw / 2.0, hw, hw, 0.0);
            b.push_loop(&hole);
            b.holes.push(Point2::new(x0 + 1.0 + hw / 2.0, cy));
        }
        if rng.chance(40) {
            // Open constraint chain: an axis-aligned V of 1–2 segments.
            let base = b.points.len() as u32;
            let qx = cx + 0.5;
            b.points.push(Point2::new(qx, cy - 0.5));
            b.points.push(Point2::new(qx + 0.5, cy - 0.5));
            b.segments.push((base, base + 1));
            if rng.chance(50) {
                b.points.push(Point2::new(qx + 0.5, cy + 0.5));
                b.segments.push((base + 1, base + 2));
            }
        }

        // Near-degenerate interior vertex: a few ulps above the bottom
        // edge (inside the part, off every constraint).
        if rng.chance(45) {
            let eps = [1e-7, 1e-9, 1e-12][rng.below(3) as usize];
            b.points
                .push(Point2::new(x0 + w / 2.0, y0 + eps * (1.0 + h)));
        }
        // Vertex lying *exactly* on the top edge (forces a constraint
        // split through a vertex that belongs to no segment).
        if rng.chance(45) {
            b.points.push(Point2::new(x0 + w / 2.0, y0 + h));
        }
        // A plain interior point so refinement has something to chew on.
        b.points
            .push(Point2::new(cx - rng.dyadic(), cy + rng.dyadic() - 0.5));
    }

    // Exactly-collinear chains: subdivide a few outline segments.
    for _ in 0..rng.below(3) {
        let si = rng.below(b.segments.len() as u64) as usize;
        subdivide_collinear(&mut b, si, 2 + rng.below(3));
    }

    // Repair seasoning: duplicate an existing point (sometimes as -0.0),
    // and duplicate an existing segment.
    if rng.chance(50) {
        let i = rng.below(b.points.len() as u64) as usize;
        let mut q = b.points[i];
        if q.y == 0.0 {
            q.y = -0.0;
        }
        b.points.push(q);
    }
    if rng.chance(50) {
        let (s, t) = b.segments[rng.below(b.segments.len() as u64) as usize];
        b.segments.push((t, s));
    }

    // Rejection seasoning: a segment that properly crosses the first
    // part's bottom edge (segment 0 spans the bottom, possibly already
    // subdivided — cross whatever segment 0 currently is).
    let expect_reject = rng.chance(12);
    if expect_reject {
        let (a, c) = b.segments[0];
        let (pa, pc) = (b.points[a as usize], b.points[c as usize]);
        let mid = pa.midpoint(pc);
        let base = b.points.len() as u32;
        b.points.push(Point2::new(mid.x, mid.y - 1.0));
        b.points.push(Point2::new(mid.x, mid.y + 1.0));
        b.segments.push((base, base + 1));
    }

    GeneratedPslg {
        pslg: Pslg::new(b.points, b.segments, b.holes),
        expect_reject,
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pslg::PslgError;

    #[test]
    fn valid_by_construction() {
        let mut rejects = 0;
        for seed in 0..400 {
            let g = generate_pslg(seed);
            match g.pslg.validate() {
                Ok(v) => {
                    assert!(!g.expect_reject, "seed {seed}: crossing not detected");
                    assert!(v.pslg.points.len() >= 4);
                    assert!(!v.pslg.segments.is_empty());
                }
                Err(PslgError::SegmentsCross { .. }) => {
                    assert!(g.expect_reject, "seed {seed}: spurious crossing");
                    rejects += 1;
                }
                Err(e) => panic!("seed {seed}: unexpected rejection {e:?}"),
            }
        }
        // The tagged fraction actually fires.
        assert!(rejects > 10, "only {rejects} planted crossings in 400");
    }

    #[test]
    fn deterministic_per_seed() {
        for seed in [0, 1, 7, 99, 12345] {
            let a = generate_pslg(seed);
            let b = generate_pslg(seed);
            assert_eq!(a.pslg, b.pslg);
            assert_eq!(a.expect_reject, b.expect_reject);
        }
    }

    #[test]
    fn seasonings_all_appear_somewhere() {
        let (mut merged, mut dup_seg, mut touching) = (false, false, false);
        for seed in 0..200 {
            let g = generate_pslg(seed);
            if let Ok(v) = g.pslg.validate() {
                merged |= v.report.merged_points > 0;
                dup_seg |= v.report.dropped_duplicate > 0;
                touching |= v.pslg.points.len() < g.pslg.points.len();
            }
            touching |= g.expect_reject;
        }
        assert!(merged && dup_seg && touching);
    }
}
