//! Two-dimensional points and vectors.
//!
//! `Point2` is a location in the plane; `Vec2` is a displacement. The mesh
//! generator works almost exclusively in `f64`; coordinates of aerospace
//! domains span roughly `[-50, 50]` chord lengths, well inside the range
//! where the adaptive predicates in [`crate::predicates`] stay exact.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A point in the plane.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point2 {
    pub x: f64,
    pub y: f64,
}

/// A displacement (direction + magnitude) in the plane.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    pub x: f64,
    pub y: f64,
}

impl Point2 {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point2 { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point2 = Point2 { x: 0.0, y: 0.0 };

    /// Vector from `self` to `other`.
    #[inline]
    pub fn to(self, other: Point2) -> Vec2 {
        Vec2::new(other.x - self.x, other.y - self.y)
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(self, other: Point2) -> f64 {
        self.to(other).norm()
    }

    /// Squared Euclidean distance to `other` (avoids the square root).
    #[inline]
    pub fn distance_sq(self, other: Point2) -> f64 {
        self.to(other).norm_sq()
    }

    /// Midpoint of the segment `self`–`other`.
    #[inline]
    pub fn midpoint(self, other: Point2) -> Point2 {
        Point2::new(0.5 * (self.x + other.x), 0.5 * (self.y + other.y))
    }

    /// Linear interpolation: `t = 0` gives `self`, `t = 1` gives `other`.
    #[inline]
    pub fn lerp(self, other: Point2, t: f64) -> Point2 {
        Point2::new(
            self.x + t * (other.x - self.x),
            self.y + t * (other.y - self.y),
        )
    }

    /// Componentwise minimum (useful for bounding boxes).
    #[inline]
    pub fn min(self, other: Point2) -> Point2 {
        Point2::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Componentwise maximum (useful for bounding boxes).
    #[inline]
    pub fn max(self, other: Point2) -> Point2 {
        Point2::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// `true` when both coordinates are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Lexicographic comparison by `(x, y)`; the order used by the
    /// divide-and-conquer triangulator and the monotone-chain hull.
    #[inline]
    pub fn lex_cmp(self, other: Point2) -> std::cmp::Ordering {
        self.x
            .total_cmp(&other.x)
            .then_with(|| self.y.total_cmp(&other.y))
    }
}

impl Vec2 {
    /// Creates a vector from its components.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Z-component of the 3-D cross product (signed parallelogram area).
    #[inline]
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Euclidean length.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Squared Euclidean length.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Unit vector in the same direction. Returns `None` for (near-)zero
    /// vectors, where the direction is undefined.
    #[inline]
    pub fn normalized(self) -> Option<Vec2> {
        let n = self.norm();
        if n > 0.0 && n.is_finite() {
            Some(self / n)
        } else {
            None
        }
    }

    /// Counter-clockwise perpendicular (rotate by +90 degrees).
    #[inline]
    pub fn perp(self) -> Vec2 {
        Vec2::new(-self.y, self.x)
    }

    /// Rotates the vector by `theta` radians counter-clockwise.
    #[inline]
    pub fn rotated(self, theta: f64) -> Vec2 {
        let (s, c) = theta.sin_cos();
        Vec2::new(c * self.x - s * self.y, s * self.x + c * self.y)
    }

    /// Unsigned angle between two vectors in `[0, pi]`.
    ///
    /// Uses `atan2(|cross|, dot)` which is far more accurate near 0 and pi
    /// than `acos` of a clamped cosine.
    #[inline]
    pub fn angle_between(self, other: Vec2) -> f64 {
        self.cross(other).abs().atan2(self.dot(other))
    }

    /// Signed angle from `self` to `other` in `(-pi, pi]`, positive
    /// counter-clockwise.
    #[inline]
    pub fn signed_angle_to(self, other: Vec2) -> f64 {
        self.cross(other).atan2(self.dot(other))
    }

    /// Direction angle of this vector in `(-pi, pi]`.
    #[inline]
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Spherical-style linear interpolation of *directions*: interpolates
    /// the angle between two (not necessarily unit) vectors and returns a
    /// unit vector. This is the "linear interpolation between the two
    /// original normals" used for ray fans in the boundary layer.
    pub fn slerp_dir(self, other: Vec2, t: f64) -> Option<Vec2> {
        let a = self.normalized()?;
        let b = other.normalized()?;
        let delta = a.signed_angle_to(b);
        Some(a.rotated(delta * t))
    }
}

impl Add<Vec2> for Point2 {
    type Output = Point2;
    #[inline]
    fn add(self, v: Vec2) -> Point2 {
        Point2::new(self.x + v.x, self.y + v.y)
    }
}

impl Sub<Vec2> for Point2 {
    type Output = Point2;
    #[inline]
    fn sub(self, v: Vec2) -> Point2 {
        Point2::new(self.x - v.x, self.y - v.y)
    }
}

impl Sub<Point2> for Point2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, p: Point2) -> Vec2 {
        Vec2::new(self.x - p.x, self.y - p.y)
    }
}

impl AddAssign<Vec2> for Point2 {
    #[inline]
    fn add_assign(&mut self, v: Vec2) {
        self.x += v.x;
        self.y += v.y;
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, o: Vec2) -> Vec2 {
        Vec2::new(self.x + o.x, self.y + o.y)
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, o: Vec2) -> Vec2 {
        Vec2::new(self.x - o.x, self.y - o.y)
    }
}

impl AddAssign for Vec2 {
    #[inline]
    fn add_assign(&mut self, o: Vec2) {
        self.x += o.x;
        self.y += o.y;
    }
}

impl SubAssign for Vec2 {
    #[inline]
    fn sub_assign(&mut self, o: Vec2) {
        self.x -= o.x;
        self.y -= o.y;
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, s: f64) -> Vec2 {
        Vec2::new(self.x * s, self.y * s)
    }
}

impl Mul<Vec2> for f64 {
    type Output = Vec2;
    #[inline]
    fn mul(self, v: Vec2) -> Vec2 {
        v * self
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn div(self, s: f64) -> Vec2 {
        Vec2::new(self.x / s, self.y / s)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn point_vector_arithmetic() {
        let p = Point2::new(1.0, 2.0);
        let q = Point2::new(4.0, 6.0);
        let v = q - p;
        assert_eq!(v, Vec2::new(3.0, 4.0));
        assert_eq!(p + v, q);
        assert_eq!(q - v, p);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(p.distance(q), 5.0);
        assert_eq!(p.distance_sq(q), 25.0);
    }

    #[test]
    fn midpoint_and_lerp() {
        let p = Point2::new(0.0, 0.0);
        let q = Point2::new(2.0, 4.0);
        assert_eq!(p.midpoint(q), Point2::new(1.0, 2.0));
        assert_eq!(p.lerp(q, 0.0), p);
        assert_eq!(p.lerp(q, 1.0), q);
        assert_eq!(p.lerp(q, 0.25), Point2::new(0.5, 1.0));
    }

    #[test]
    fn dot_cross_perp() {
        let a = Vec2::new(1.0, 0.0);
        let b = Vec2::new(0.0, 1.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), 1.0);
        assert_eq!(b.cross(a), -1.0);
        assert_eq!(a.perp(), b);
    }

    #[test]
    fn normalize_zero_is_none() {
        assert!(Vec2::ZERO.normalized().is_none());
        let v = Vec2::new(3.0, 4.0).normalized().unwrap();
        assert!((v.norm() - 1.0).abs() < 1e-15);
        assert!((v.x - 0.6).abs() < 1e-15);
    }

    #[test]
    fn rotation() {
        let v = Vec2::new(1.0, 0.0).rotated(FRAC_PI_2);
        assert!((v.x).abs() < 1e-15);
        assert!((v.y - 1.0).abs() < 1e-15);
    }

    #[test]
    fn angles() {
        let a = Vec2::new(1.0, 0.0);
        let b = Vec2::new(0.0, 2.0);
        assert!((a.angle_between(b) - FRAC_PI_2).abs() < 1e-15);
        assert!((a.signed_angle_to(b) - FRAC_PI_2).abs() < 1e-15);
        assert!((b.signed_angle_to(a) + FRAC_PI_2).abs() < 1e-15);
        // Anti-parallel vectors.
        assert!((a.angle_between(-a) - PI).abs() < 1e-12);
    }

    #[test]
    fn angle_between_is_accurate_for_tiny_angles() {
        let a = Vec2::new(1.0, 0.0);
        let b = Vec2::new(1.0, 1e-9);
        // acos-based formulas lose all precision here; atan2 keeps it.
        assert!((a.angle_between(b) - 1e-9).abs() < 1e-18);
    }

    #[test]
    fn slerp_dir_interpolates_angle() {
        let a = Vec2::new(1.0, 0.0);
        let b = Vec2::new(0.0, 1.0);
        let m = a.slerp_dir(b, 0.5).unwrap();
        assert!((m.angle() - FRAC_PI_2 / 2.0).abs() < 1e-14);
        assert!((m.norm() - 1.0).abs() < 1e-14);
    }

    #[test]
    fn lex_ordering() {
        use std::cmp::Ordering::*;
        let a = Point2::new(0.0, 1.0);
        let b = Point2::new(0.0, 2.0);
        let c = Point2::new(1.0, 0.0);
        assert_eq!(a.lex_cmp(b), Less);
        assert_eq!(b.lex_cmp(a), Greater);
        assert_eq!(a.lex_cmp(c), Less);
        assert_eq!(a.lex_cmp(a), Equal);
    }
}
