//! Axis-aligned bounding boxes and Cohen–Sutherland segment/box clipping.
//!
//! The boundary-layer intersection pipeline (paper §II.B) first prunes
//! candidate rays by testing their segments against the AABB of another
//! element's boundary layer with "a modified version of the
//! Cohen–Sutherland algorithm"; survivors go on to the alternating digital
//! tree and finally to exact segment tests.

use crate::point::Point2;
use crate::segment::Segment;

/// An axis-aligned bounding box (closed on all sides).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    pub min: Point2,
    pub max: Point2,
}

/// Cohen–Sutherland region outcodes.
mod outcode {
    pub const INSIDE: u8 = 0;
    pub const LEFT: u8 = 1;
    pub const RIGHT: u8 = 2;
    pub const BOTTOM: u8 = 4;
    pub const TOP: u8 = 8;
}

impl Aabb {
    /// Box from two corner points (in any order).
    pub fn new(a: Point2, b: Point2) -> Self {
        Aabb {
            min: a.min(b),
            max: a.max(b),
        }
    }

    /// The empty box (inverted bounds); `expand` grows it around points.
    pub fn empty() -> Self {
        Aabb {
            min: Point2::new(f64::INFINITY, f64::INFINITY),
            max: Point2::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
        }
    }

    /// `true` while no point has been added to an [`Aabb::empty`] box.
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y
    }

    /// Smallest box containing all `points`; `None` for an empty slice.
    pub fn from_points(points: &[Point2]) -> Option<Self> {
        let mut b = Aabb::empty();
        for &p in points {
            b.expand(p);
        }
        if b.is_empty() {
            None
        } else {
            Some(b)
        }
    }

    /// Bounding box of a segment (its *extent box*, paper §II.B).
    pub fn of_segment(s: &Segment) -> Self {
        Aabb::new(s.a, s.b)
    }

    /// Grows the box to contain `p`.
    pub fn expand(&mut self, p: Point2) {
        self.min = self.min.min(p);
        self.max = self.max.max(p);
    }

    /// Grows the box to contain another box.
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Enlarges the box by `margin` on every side.
    pub fn inflated(&self, margin: f64) -> Aabb {
        Aabb {
            min: Point2::new(self.min.x - margin, self.min.y - margin),
            max: Point2::new(self.max.x + margin, self.max.y + margin),
        }
    }

    /// Width along x.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height along y.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Point2 {
        self.min.midpoint(self.max)
    }

    /// `true` when `p` lies in the closed box.
    #[inline]
    pub fn contains(&self, p: Point2) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// `true` when the closed boxes share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Aabb) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// Cohen–Sutherland outcode of `p` with respect to this box.
    #[inline]
    fn outcode(&self, p: Point2) -> u8 {
        let mut code = outcode::INSIDE;
        if p.x < self.min.x {
            code |= outcode::LEFT;
        } else if p.x > self.max.x {
            code |= outcode::RIGHT;
        }
        if p.y < self.min.y {
            code |= outcode::BOTTOM;
        } else if p.y > self.max.y {
            code |= outcode::TOP;
        }
        code
    }

    /// Cohen–Sutherland test: does the segment intersect the box?
    ///
    /// This is the *pruning* variant used by the paper — it answers the
    /// yes/no question without constructing the clipped segment unless
    /// needed. Trivially-accept and trivially-reject cases exit after the
    /// outcode comparison.
    pub fn intersects_segment(&self, s: &Segment) -> bool {
        self.clip_segment(s).is_some()
    }

    /// Cohen–Sutherland clipping: the part of `s` inside the box, or `None`
    /// when the segment misses the box entirely.
    pub fn clip_segment(&self, s: &Segment) -> Option<Segment> {
        let mut a = s.a;
        let mut b = s.b;
        let mut code_a = self.outcode(a);
        let mut code_b = self.outcode(b);

        // Each iteration moves one outside endpoint onto a box edge; at
        // most four iterations are possible before accept/reject.
        loop {
            if code_a | code_b == outcode::INSIDE {
                return Some(Segment::new(a, b)); // trivially accept
            }
            if code_a & code_b != 0 {
                return None; // trivially reject: both in one outside half-plane
            }
            let code_out = if code_a != outcode::INSIDE {
                code_a
            } else {
                code_b
            };
            let p = if code_out & outcode::TOP != 0 {
                Point2::new(
                    a.x + (b.x - a.x) * (self.max.y - a.y) / (b.y - a.y),
                    self.max.y,
                )
            } else if code_out & outcode::BOTTOM != 0 {
                Point2::new(
                    a.x + (b.x - a.x) * (self.min.y - a.y) / (b.y - a.y),
                    self.min.y,
                )
            } else if code_out & outcode::RIGHT != 0 {
                Point2::new(
                    self.max.x,
                    a.y + (b.y - a.y) * (self.max.x - a.x) / (b.x - a.x),
                )
            } else {
                Point2::new(
                    self.min.x,
                    a.y + (b.y - a.y) * (self.min.x - a.x) / (b.x - a.x),
                )
            };
            if !p.is_finite() {
                // Degenerate (zero-length direction against a slab it never
                // reaches) — cannot intersect.
                return None;
            }
            if code_out == code_a {
                a = p;
                code_a = self.outcode(a);
            } else {
                b = p;
                code_b = self.outcode(b);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_box() -> Aabb {
        Aabb::new(Point2::new(0.0, 0.0), Point2::new(1.0, 1.0))
    }

    #[test]
    fn construction_orders_corners() {
        let b = Aabb::new(Point2::new(2.0, -1.0), Point2::new(-2.0, 1.0));
        assert_eq!(b.min, Point2::new(-2.0, -1.0));
        assert_eq!(b.max, Point2::new(2.0, 1.0));
        assert_eq!(b.width(), 4.0);
        assert_eq!(b.height(), 2.0);
        assert_eq!(b.center(), Point2::new(0.0, 0.0));
    }

    #[test]
    fn from_points_and_expand() {
        assert!(Aabb::from_points(&[]).is_none());
        let pts = [
            Point2::new(0.0, 5.0),
            Point2::new(-3.0, 1.0),
            Point2::new(2.0, 2.0),
        ];
        let b = Aabb::from_points(&pts).unwrap();
        assert_eq!(b.min, Point2::new(-3.0, 1.0));
        assert_eq!(b.max, Point2::new(2.0, 5.0));
    }

    #[test]
    fn box_box_intersection() {
        let a = unit_box();
        let b = Aabb::new(Point2::new(0.5, 0.5), Point2::new(2.0, 2.0));
        let c = Aabb::new(Point2::new(1.5, 1.5), Point2::new(2.0, 2.0));
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        // Edge-touching boxes intersect (closed boxes).
        let d = Aabb::new(Point2::new(1.0, 0.0), Point2::new(2.0, 1.0));
        assert!(a.intersects(&d));
    }

    #[test]
    fn clip_trivial_accept() {
        let b = unit_box();
        let s = Segment::new(Point2::new(0.2, 0.2), Point2::new(0.8, 0.8));
        assert_eq!(b.clip_segment(&s), Some(s));
    }

    #[test]
    fn clip_trivial_reject() {
        let b = unit_box();
        let s = Segment::new(Point2::new(2.0, 2.0), Point2::new(3.0, 5.0));
        assert_eq!(b.clip_segment(&s), None);
        assert!(!b.intersects_segment(&s));
    }

    #[test]
    fn clip_crossing_segment() {
        let b = unit_box();
        let s = Segment::new(Point2::new(-1.0, 0.5), Point2::new(2.0, 0.5));
        let clipped = b.clip_segment(&s).unwrap();
        assert!((clipped.a.x - 0.0).abs() < 1e-15);
        assert!((clipped.b.x - 1.0).abs() < 1e-15);
        assert_eq!(clipped.a.y, 0.5);
    }

    #[test]
    fn clip_diagonal_corner_cut() {
        let b = unit_box();
        // Cuts the lower-left corner region.
        let s = Segment::new(Point2::new(-0.5, 0.5), Point2::new(0.5, -0.5));
        let clipped = b.clip_segment(&s).unwrap();
        // Clipped segment must lie within the box.
        assert!(b.contains(clipped.a));
        assert!(b.contains(clipped.b));
    }

    #[test]
    fn segment_missing_corner_is_rejected() {
        let b = unit_box();
        // Passes near, but misses, the upper-right corner: both endpoints
        // outside, outcodes differ, but no part is inside.
        let s = Segment::new(Point2::new(0.9, 2.0), Point2::new(2.0, 0.9));
        assert!(!b.intersects_segment(&s));
    }

    #[test]
    fn vertical_and_horizontal_segments() {
        let b = unit_box();
        let v = Segment::new(Point2::new(0.5, -1.0), Point2::new(0.5, 2.0));
        let h = Segment::new(Point2::new(-1.0, 0.5), Point2::new(2.0, 0.5));
        assert!(b.intersects_segment(&v));
        assert!(b.intersects_segment(&h));
        let v_out = Segment::new(Point2::new(1.5, -1.0), Point2::new(1.5, 2.0));
        assert!(!b.intersects_segment(&v_out));
    }

    #[test]
    fn degenerate_point_segment() {
        let b = unit_box();
        let inside = Segment::new(Point2::new(0.5, 0.5), Point2::new(0.5, 0.5));
        let outside = Segment::new(Point2::new(5.0, 5.0), Point2::new(5.0, 5.0));
        assert!(b.intersects_segment(&inside));
        assert!(!b.intersects_segment(&outside));
    }

    #[test]
    fn inflate_and_union() {
        let b = unit_box().inflated(1.0);
        assert_eq!(b.min, Point2::new(-1.0, -1.0));
        assert_eq!(b.max, Point2::new(2.0, 2.0));
        let u = unit_box().union(&Aabb::new(Point2::new(5.0, 5.0), Point2::new(6.0, 6.0)));
        assert_eq!(u.max, Point2::new(6.0, 6.0));
        assert_eq!(u.min, Point2::new(0.0, 0.0));
    }
}
