//! Convex hulls via Andrew's monotone chain algorithm.
//!
//! The parallel triangulation (paper §II.D, Fig 7) needs the **lower convex
//! hull** of points that are already coordinate-sorted: the hull of the
//! flattened paraboloid projection *is* the dividing Delaunay path. Because
//! the input arrives sorted, the lower hull is computed in worst-case
//! linear time with one pass and a stack.

use crate::point::Point2;
use crate::predicates::orient2d_one;

/// Indices (into `points`) of the lower convex hull of a set that is
/// **already sorted** lexicographically by `(x, y)`.
///
/// The hull runs from the first point to the last; collinear interior
/// points are removed (only extreme points remain). Duplicated points are
/// tolerated. Runs in `O(n)`.
///
/// # Panics
/// Debug builds assert the input is sorted.
pub fn lower_hull_indices_sorted(points: &[Point2]) -> Vec<usize> {
    debug_assert!(
        points
            .windows(2)
            .all(|w| w[0].lex_cmp(w[1]) != std::cmp::Ordering::Greater),
        "input must be lexicographically sorted"
    );
    let n = points.len();
    if n <= 2 {
        return (0..n).collect();
    }
    let mut hull: Vec<usize> = Vec::with_capacity(n / 2 + 2);
    for i in 0..n {
        // Pop while the chain makes a non-left (right or straight) turn:
        // "removing a point if it makes a right-hand turn" (Fig 7c), plus
        // collinear points which are not hull extremes.
        while hull.len() >= 2 {
            let a = points[hull[hull.len() - 2]];
            let b = points[hull[hull.len() - 1]];
            if orient2d_one(a, b, points[i]) <= 0.0 {
                hull.pop();
            } else {
                break;
            }
        }
        // Skip exact duplicates of the current chain end.
        if let Some(&last) = hull.last() {
            if points[last] == points[i] {
                continue;
            }
        }
        hull.push(i);
    }
    hull
}

/// Lower convex hull points of a **sorted** point slice (see
/// [`lower_hull_indices_sorted`]).
pub fn lower_hull_sorted(points: &[Point2]) -> Vec<Point2> {
    lower_hull_indices_sorted(points)
        .into_iter()
        .map(|i| points[i])
        .collect()
}

/// Full convex hull (counter-clockwise, no repeated first/last point) of an
/// arbitrary point set. `O(n log n)` because of the sort.
pub fn convex_hull(points: &[Point2]) -> Vec<Point2> {
    let mut pts: Vec<Point2> = points.to_vec();
    pts.sort_by(|a, b| a.lex_cmp(*b));
    pts.dedup();
    let n = pts.len();
    if n <= 2 {
        return pts;
    }
    let lower = lower_hull_indices_sorted(&pts);
    // Upper hull: same scan over the reversed order.
    let mut upper: Vec<usize> = Vec::with_capacity(n / 2 + 2);
    for i in (0..n).rev() {
        while upper.len() >= 2 {
            let a = pts[upper[upper.len() - 2]];
            let b = pts[upper[upper.len() - 1]];
            if orient2d_one(a, b, pts[i]) <= 0.0 {
                upper.pop();
            } else {
                break;
            }
        }
        upper.push(i);
    }
    let mut hull: Vec<Point2> = lower.iter().map(|&i| pts[i]).collect();
    // Skip the endpoints shared with the lower hull.
    hull.extend(upper[1..upper.len() - 1].iter().map(|&i| pts[i]));
    hull
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicates::orient2d;

    fn p(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    #[test]
    fn lower_hull_of_v_shape() {
        let pts = [p(0.0, 1.0), p(1.0, 0.0), p(2.0, 1.0)];
        let h = lower_hull_indices_sorted(&pts);
        assert_eq!(h, vec![0, 1, 2]);
    }

    #[test]
    fn lower_hull_removes_interior_points() {
        // The middle point is above the chord and must be popped.
        let pts = [p(0.0, 0.0), p(1.0, 2.0), p(2.0, 0.0)];
        let h = lower_hull_indices_sorted(&pts);
        assert_eq!(h, vec![0, 2]);
    }

    #[test]
    fn lower_hull_collinear_keeps_extremes_only() {
        let pts = [p(0.0, 0.0), p(1.0, 1.0), p(2.0, 2.0), p(3.0, 3.0)];
        let h = lower_hull_indices_sorted(&pts);
        assert_eq!(h, vec![0, 3]);
    }

    #[test]
    fn lower_hull_small_inputs() {
        assert!(lower_hull_indices_sorted(&[]).is_empty());
        assert_eq!(lower_hull_indices_sorted(&[p(1.0, 1.0)]), vec![0]);
        assert_eq!(
            lower_hull_indices_sorted(&[p(0.0, 0.0), p(1.0, 0.0)]),
            vec![0, 1]
        );
    }

    #[test]
    fn lower_hull_with_duplicates() {
        let pts = [
            p(0.0, 0.0),
            p(0.0, 0.0),
            p(1.0, -1.0),
            p(1.0, -1.0),
            p(2.0, 0.0),
        ];
        let h = lower_hull_sorted(&pts);
        assert_eq!(h, vec![p(0.0, 0.0), p(1.0, -1.0), p(2.0, 0.0)]);
    }

    #[test]
    fn lower_hull_is_convex_and_below_all_points() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut pts: Vec<Point2> = (0..200)
            .map(|_| p(rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0)))
            .collect();
        pts.sort_by(|a, b| a.lex_cmp(*b));
        let h = lower_hull_sorted(&pts);
        // Convexity: every consecutive triple turns left.
        for w in h.windows(3) {
            assert!(orient2d(w[0], w[1], w[2]) > 0.0);
        }
        // Support: no input point lies strictly below any hull edge.
        for w in h.windows(2) {
            for &q in &pts {
                assert!(
                    orient2d(w[0], w[1], q) >= 0.0,
                    "point {q:?} below hull edge {w:?}"
                );
            }
        }
        // Endpoints are the extreme input points.
        assert_eq!(h.first().copied().unwrap(), pts[0]);
        assert_eq!(h.last().copied().unwrap(), *pts.last().unwrap());
    }

    #[test]
    fn full_hull_of_square_with_interior() {
        let pts = [
            p(0.0, 0.0),
            p(1.0, 0.0),
            p(1.0, 1.0),
            p(0.0, 1.0),
            p(0.5, 0.5),
            p(0.25, 0.75),
        ];
        let h = convex_hull(&pts);
        assert_eq!(h.len(), 4);
        // CCW ordering.
        for i in 0..h.len() {
            let a = h[i];
            let b = h[(i + 1) % h.len()];
            let c = h[(i + 2) % h.len()];
            assert!(orient2d(a, b, c) > 0.0);
        }
    }

    #[test]
    fn full_hull_degenerate_collinear() {
        let pts = [p(0.0, 0.0), p(1.0, 1.0), p(2.0, 2.0)];
        let h = convex_hull(&pts);
        assert_eq!(h, vec![p(0.0, 0.0), p(2.0, 2.0)]);
    }
}
