//! General planar straight-line graph (PSLG) domains with validation.
//!
//! The front door for arbitrary multi-part polygonal input: a point set,
//! undirected constraint segments (closed loops, open chains, isolated
//! interior points are all legal), and Triangle-style hole seeds. The
//! meshable region is defined exactly as Triangle's `-p` switch defines
//! it: the constrained Delaunay triangulation of everything, carved from
//! the outside and from each hole seed.
//!
//! [`Pslg::validate`] is the single admission gate: configurations a CDT
//! handles are *repaired* in place (duplicate points merged, degenerate
//! and duplicate segments dropped), configurations no CDT can represent
//! are *rejected* with a typed [`PslgError`]. Everything downstream — the
//! pipeline, the fuzz harness, the `.poly` reader — goes through it, so
//! "accepted by validate" is the robustness contract the fuzz gate
//! enforces.

use crate::aabb::Aabb;
use crate::point::Point2;
use crate::segment::Segment;
use std::collections::HashMap;
use std::fmt;

/// A general PSLG domain: points, undirected constraint segments (by
/// point index), and hole seed points.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Pslg {
    /// Vertex coordinates.
    pub points: Vec<Point2>,
    /// Constraint segments as point-index pairs. Closed loops, open
    /// chains, and shared endpoints are all allowed; crossings are not.
    pub segments: Vec<(u32, u32)>,
    /// Hole seeds: one point strictly inside each region to carve out.
    pub holes: Vec<Point2>,
}

/// Why a PSLG cannot be meshed. Repairable defects never reach this —
/// [`Pslg::validate`] fixes them and reports the fixes in
/// [`RepairReport`].
#[derive(Debug, Clone, PartialEq)]
pub enum PslgError {
    /// The PSLG has no points at all.
    Empty,
    /// A coordinate is NaN or infinite.
    NonFinitePoint(usize),
    /// A hole seed coordinate is NaN or infinite.
    NonFiniteHole(usize),
    /// A segment references a point index that does not exist.
    SegmentOutOfRange { segment: usize, vertex: u32 },
    /// Two constraint segments cross at a point interior to both. The
    /// pairs are the (repaired) endpoint indices of the two segments.
    SegmentsCross { a: (u32, u32), b: (u32, u32) },
    /// Fewer than three distinct points survive repair — no triangulation
    /// exists.
    TooFewPoints,
}

impl fmt::Display for PslgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PslgError::Empty => write!(f, "PSLG has no points"),
            PslgError::NonFinitePoint(i) => write!(f, "point {i} is not finite"),
            PslgError::NonFiniteHole(i) => write!(f, "hole seed {i} is not finite"),
            PslgError::SegmentOutOfRange { segment, vertex } => {
                write!(f, "segment {segment} references missing point {vertex}")
            }
            PslgError::SegmentsCross { a, b } => write!(
                f,
                "segments ({},{}) and ({},{}) properly cross",
                a.0, a.1, b.0, b.1
            ),
            PslgError::TooFewPoints => write!(f, "fewer than 3 distinct points"),
        }
    }
}

impl std::error::Error for PslgError {}

/// What [`Pslg::validate`] repaired on the way to a valid PSLG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RepairReport {
    /// Points merged into an earlier exact duplicate (`-0.0` and `0.0`
    /// coordinates count as the same position).
    pub merged_points: usize,
    /// Segments dropped because both endpoints merged to one point.
    pub dropped_degenerate: usize,
    /// Segments dropped as exact (undirected) duplicates of an earlier
    /// segment.
    pub dropped_duplicate: usize,
}

impl RepairReport {
    /// `true` when validation changed nothing.
    pub fn is_clean(&self) -> bool {
        *self == RepairReport::default()
    }
}

/// A PSLG that passed [`Pslg::validate`]: duplicate-free points, no
/// degenerate or duplicate segments, no proper segment crossings.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidPslg {
    /// The repaired PSLG.
    pub pslg: Pslg,
    /// What repair did.
    pub report: RepairReport,
}

/// Coordinate key with `-0.0` normalized to `0.0`, so duplicate detection
/// agrees with f64 `==` (matching the mesh kernel's canonical interning).
#[inline]
fn coord_key(p: Point2) -> (u64, u64) {
    let norm = |v: f64| if v == 0.0 { 0.0f64 } else { v }.to_bits();
    (norm(p.x), norm(p.y))
}

impl Pslg {
    /// Builds a PSLG; no validation happens until [`Pslg::validate`].
    pub fn new(points: Vec<Point2>, segments: Vec<(u32, u32)>, holes: Vec<Point2>) -> Self {
        Pslg {
            points,
            segments,
            holes,
        }
    }

    /// Bounding box of all points.
    pub fn bbox(&self) -> Aabb {
        let mut b = Aabb::empty();
        for &p in &self.points {
            b.expand(p);
        }
        b
    }

    /// Validates and repairs the PSLG.
    ///
    /// **Repaired** (CDT-representable, fixed silently and reported):
    /// exact duplicate points are merged, segments whose endpoints merged
    /// are dropped, duplicate undirected segments are dropped.
    ///
    /// **Accepted as-is**: shared endpoints, T-junctions at a vertex,
    /// vertices lying exactly on a segment (the CDT splits the constraint
    /// there), collinear overlapping segments whose overlap ends at
    /// vertices, touching parts, open chains, isolated points.
    ///
    /// **Rejected** with a typed error: non-finite coordinates,
    /// out-of-range indices, segments that properly cross (no CDT
    /// contains both as edges), fewer than three distinct points.
    pub fn validate(&self) -> Result<ValidPslg, PslgError> {
        if self.points.is_empty() {
            return Err(PslgError::Empty);
        }
        for (i, p) in self.points.iter().enumerate() {
            if !p.is_finite() {
                return Err(PslgError::NonFinitePoint(i));
            }
        }
        for (i, h) in self.holes.iter().enumerate() {
            if !h.is_finite() {
                return Err(PslgError::NonFiniteHole(i));
            }
        }
        let n = self.points.len() as u32;
        for (i, &(a, b)) in self.segments.iter().enumerate() {
            for v in [a, b] {
                if v >= n {
                    return Err(PslgError::SegmentOutOfRange {
                        segment: i,
                        vertex: v,
                    });
                }
            }
        }

        let mut report = RepairReport::default();

        // Merge exact duplicate points (first occurrence wins) and remap.
        let mut canon: HashMap<(u64, u64), u32> = HashMap::with_capacity(self.points.len());
        let mut remap: Vec<u32> = Vec::with_capacity(self.points.len());
        let mut points: Vec<Point2> = Vec::with_capacity(self.points.len());
        for &p in &self.points {
            let next = points.len() as u32;
            let id = *canon.entry(coord_key(p)).or_insert(next);
            if id == next {
                points.push(p);
            } else {
                report.merged_points += 1;
            }
            remap.push(id);
        }
        if points.len() < 3 {
            return Err(PslgError::TooFewPoints);
        }

        // Remap segments; drop degenerate and duplicate ones.
        let mut seen: HashMap<(u32, u32), ()> = HashMap::with_capacity(self.segments.len());
        let mut segments: Vec<(u32, u32)> = Vec::with_capacity(self.segments.len());
        for &(a, b) in &self.segments {
            let (a, b) = (remap[a as usize], remap[b as usize]);
            if a == b {
                report.dropped_degenerate += 1;
                continue;
            }
            let key = (a.min(b), a.max(b));
            if seen.insert(key, ()).is_some() {
                report.dropped_duplicate += 1;
                continue;
            }
            segments.push((a, b));
        }

        // Proper crossings are unrepairable: no triangulation of this
        // point set contains both segments as edges. Exact predicate via
        // Segment::properly_intersects (touching and collinear overlap
        // pass — the CDT splits constraints at vertices on them).
        for i in 0..segments.len() {
            let (a0, a1) = segments[i];
            let sa = Segment::new(points[a0 as usize], points[a1 as usize]);
            for &(b0, b1) in &segments[i + 1..] {
                let sb = Segment::new(points[b0 as usize], points[b1 as usize]);
                if sa.properly_intersects(&sb) {
                    return Err(PslgError::SegmentsCross {
                        a: (a0, a1),
                        b: (b0, b1),
                    });
                }
            }
        }

        Ok(ValidPslg {
            pslg: Pslg {
                points,
                segments,
                holes: self.holes.clone(),
            },
            report,
        })
    }
}

impl ValidPslg {
    /// Closed loops of the segment graph, each returned as a CCW-oriented
    /// point cycle (orientation is *repaired*, never rejected: undirected
    /// segments carry no orientation, so normalizing to CCW is free).
    /// Vertices of open chains and isolated points appear in no loop.
    /// Vertices with degree > 2 (loops sharing a vertex) stop loop
    /// extraction at that vertex — such configurations still mesh, they
    /// just have no unambiguous loop decomposition.
    pub fn closed_loops(&self) -> Vec<Vec<Point2>> {
        let n = self.pslg.points.len();
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(a, b) in &self.pslg.segments {
            adj[a as usize].push(b);
            adj[b as usize].push(a);
        }
        let mut visited = vec![false; n];
        let mut loops = Vec::new();
        for start in 0..n as u32 {
            if visited[start as usize] || adj[start as usize].len() != 2 {
                continue;
            }
            // Walk the degree-2 chain; it is a loop iff it returns to
            // `start` through degree-2 vertices only.
            let mut cycle: Vec<u32> = vec![start];
            let mut prev = u32::MAX;
            let mut cur = start;
            let closed = loop {
                let nbrs = &adj[cur as usize];
                if nbrs.len() != 2 {
                    break false;
                }
                let next = if nbrs[0] != prev { nbrs[0] } else { nbrs[1] };
                if next == start {
                    break true;
                }
                if cycle.len() > n {
                    break false;
                }
                prev = cur;
                cur = next;
                cycle.push(cur);
            };
            if !closed || cycle.len() < 3 {
                continue;
            }
            for &v in &cycle {
                visited[v as usize] = true;
            }
            let mut pts: Vec<Point2> = cycle
                .iter()
                .map(|&v| self.pslg.points[v as usize])
                .collect();
            if !crate::polygon::is_ccw(&pts) {
                pts.reverse();
            }
            loops.push(pts);
        }
        loops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    fn square(x0: f64, y0: f64, s: f64, base: u32) -> (Vec<Point2>, Vec<(u32, u32)>) {
        (
            vec![p(x0, y0), p(x0 + s, y0), p(x0 + s, y0 + s), p(x0, y0 + s)],
            vec![
                (base, base + 1),
                (base + 1, base + 2),
                (base + 2, base + 3),
                (base + 3, base),
            ],
        )
    }

    #[test]
    fn clean_pslg_validates_unchanged() {
        let (pts, segs) = square(0.0, 0.0, 1.0, 0);
        let pslg = Pslg::new(pts.clone(), segs.clone(), vec![]);
        let v = pslg.validate().unwrap();
        assert!(v.report.is_clean());
        assert_eq!(v.pslg.points, pts);
        assert_eq!(v.pslg.segments, segs);
    }

    #[test]
    fn duplicate_points_merge_and_remap() {
        // Point 4 duplicates point 0 (one as -0.0); a segment to it must
        // remap to 0 and a (4,0) segment becomes degenerate and drops.
        let pslg = Pslg::new(
            vec![p(0.0, 0.0), p(1.0, 0.0), p(0.5, 1.0), p(-0.0, 0.0)],
            vec![(0, 1), (1, 2), (2, 3), (3, 0)],
            vec![],
        );
        let v = pslg.validate().unwrap();
        assert_eq!(v.report.merged_points, 1);
        assert_eq!(v.report.dropped_degenerate, 1);
        assert_eq!(v.pslg.points.len(), 3);
        assert_eq!(v.pslg.segments, vec![(0, 1), (1, 2), (2, 0)]);
    }

    #[test]
    fn duplicate_segments_drop() {
        let (pts, mut segs) = square(0.0, 0.0, 1.0, 0);
        segs.push((1, 0)); // reversed duplicate of (0, 1)
        let v = Pslg::new(pts, segs, vec![]).validate().unwrap();
        assert_eq!(v.report.dropped_duplicate, 1);
        assert_eq!(v.pslg.segments.len(), 4);
    }

    #[test]
    fn proper_crossing_rejected() {
        let pslg = Pslg::new(
            vec![p(0.0, 0.0), p(2.0, 2.0), p(0.0, 2.0), p(2.0, 0.0)],
            vec![(0, 1), (2, 3)],
            vec![],
        );
        match pslg.validate() {
            Err(PslgError::SegmentsCross { a, b }) => {
                assert_eq!(a, (0, 1));
                assert_eq!(b, (2, 3));
            }
            other => panic!("expected SegmentsCross, got {other:?}"),
        }
    }

    #[test]
    fn touching_parts_and_t_junctions_accepted() {
        // Two squares sharing corner (1,1); a T-junction vertex exactly on
        // the first square's bottom edge.
        let (mut pts, mut segs) = square(0.0, 0.0, 1.0, 0);
        let (pts2, segs2) = square(1.0, 1.0, 1.0, 4);
        pts.extend(pts2);
        segs.extend(segs2);
        pts.push(p(0.5, 0.0)); // exactly on segment (0,1)
        pts.push(p(0.5, -1.0));
        segs.push((8, 9));
        let v = Pslg::new(pts, segs, vec![]).validate().unwrap();
        // The shared corner is listed once per square; repair merges the
        // two copies and nothing else changes.
        assert_eq!(v.report.merged_points, 1);
        assert_eq!(v.report.dropped_degenerate, 0);
        assert_eq!(v.report.dropped_duplicate, 0);
        assert_eq!(v.pslg.points.len(), 9);
        assert_eq!(v.pslg.segments.len(), 9);
    }

    #[test]
    fn collinear_overlap_accepted() {
        // (0,1) and (2,3) overlap along y = 0 between x = 1 and x = 2; the
        // overlap ends at vertices, which the CDT splits at.
        let pslg = Pslg::new(
            vec![
                p(0.0, 0.0),
                p(2.0, 0.0),
                p(1.0, 0.0),
                p(3.0, 0.0),
                p(1.5, 1.0),
            ],
            vec![(0, 1), (2, 3)],
            vec![],
        );
        assert!(pslg.validate().is_ok());
    }

    #[test]
    fn non_finite_rejected() {
        let pslg = Pslg::new(
            vec![p(0.0, 0.0), p(f64::NAN, 0.0), p(1.0, 1.0)],
            vec![],
            vec![],
        );
        assert_eq!(pslg.validate().unwrap_err(), PslgError::NonFinitePoint(1));
    }

    #[test]
    fn out_of_range_segment_rejected() {
        let pslg = Pslg::new(
            vec![p(0.0, 0.0), p(1.0, 0.0), p(0.0, 1.0)],
            vec![(0, 7)],
            vec![],
        );
        assert!(matches!(
            pslg.validate(),
            Err(PslgError::SegmentOutOfRange {
                segment: 0,
                vertex: 7
            })
        ));
    }

    #[test]
    fn too_few_points_rejected() {
        let pslg = Pslg::new(vec![p(0.0, 0.0), p(0.0, 0.0), p(-0.0, 0.0)], vec![], vec![]);
        assert_eq!(pslg.validate().unwrap_err(), PslgError::TooFewPoints);
    }

    #[test]
    fn closed_loops_extracted_ccw() {
        let (mut pts, mut segs) = square(0.0, 0.0, 1.0, 0);
        // Second square listed clockwise; plus an open chain.
        pts.extend([p(3.0, 0.0), p(3.0, 1.0), p(4.0, 1.0), p(4.0, 0.0)]);
        segs.extend([(4, 5), (5, 6), (6, 7), (7, 4)]);
        pts.extend([p(10.0, 0.0), p(11.0, 0.0)]);
        segs.push((8, 9));
        let v = Pslg::new(pts, segs, vec![]).validate().unwrap();
        let loops = v.closed_loops();
        assert_eq!(loops.len(), 2);
        for l in &loops {
            assert!(crate::polygon::is_ccw(l));
            assert_eq!(l.len(), 4);
        }
    }
}
