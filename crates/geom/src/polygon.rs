//! Simple-polygon utilities: area, orientation, containment, convexity.
//!
//! Subdomain borders in the decoupling stage are simple polygons stored in
//! counter-clockwise order (paper §II.E); these helpers validate and reason
//! about them.

use crate::point::Point2;
use crate::predicates::orient2d;
use crate::segment::Segment;

/// Twice the signed area of the polygon (positive for counter-clockwise
/// vertex order), via the shoelace formula.
pub fn signed_area2(poly: &[Point2]) -> f64 {
    let n = poly.len();
    if n < 3 {
        return 0.0;
    }
    let mut acc = 0.0;
    for i in 0..n {
        let a = poly[i];
        let b = poly[(i + 1) % n];
        acc += a.x * b.y - b.x * a.y;
    }
    acc
}

/// Signed area (positive when counter-clockwise).
#[inline]
pub fn signed_area(poly: &[Point2]) -> f64 {
    0.5 * signed_area2(poly)
}

/// `true` when the polygon's vertices are in counter-clockwise order.
#[inline]
pub fn is_ccw(poly: &[Point2]) -> bool {
    signed_area2(poly) > 0.0
}

/// `true` when the polygon is convex (vertices in CCW order, no reflex
/// corner; exactly-collinear corners are allowed).
pub fn is_convex_ccw(poly: &[Point2]) -> bool {
    let n = poly.len();
    if n < 3 {
        return false;
    }
    for i in 0..n {
        let a = poly[i];
        let b = poly[(i + 1) % n];
        let c = poly[(i + 2) % n];
        if orient2d(a, b, c) < 0.0 {
            return false;
        }
    }
    true
}

/// Point-in-polygon by the crossing-number (even–odd) rule. Points exactly
/// on the boundary are reported as inside.
pub fn contains_point(poly: &[Point2], p: Point2) -> bool {
    let n = poly.len();
    if n < 3 {
        return false;
    }
    // Boundary check first (exact).
    for i in 0..n {
        let s = Segment::new(poly[i], poly[(i + 1) % n]);
        if s.contains_point(p) {
            return true;
        }
    }
    let mut inside = false;
    let mut j = n - 1;
    for i in 0..n {
        let (pi, pj) = (poly[i], poly[j]);
        if (pi.y > p.y) != (pj.y > p.y) {
            let x_cross = pj.x + (p.y - pj.y) / (pi.y - pj.y) * (pi.x - pj.x);
            if p.x < x_cross {
                inside = !inside;
            }
        }
        j = i;
    }
    inside
}

/// Centroid of the polygon (area-weighted). Returns the vertex average for
/// degenerate (zero-area) polygons.
pub fn centroid(poly: &[Point2]) -> Point2 {
    let a2 = signed_area2(poly);
    let n = poly.len();
    if n == 0 {
        return Point2::ORIGIN;
    }
    if a2.abs() < f64::MIN_POSITIVE {
        let (sx, sy) = poly
            .iter()
            .fold((0.0, 0.0), |(sx, sy), p| (sx + p.x, sy + p.y));
        return Point2::new(sx / n as f64, sy / n as f64);
    }
    let mut cx = 0.0;
    let mut cy = 0.0;
    for i in 0..n {
        let p = poly[i];
        let q = poly[(i + 1) % n];
        let w = p.x * q.y - q.x * p.y;
        cx += (p.x + q.x) * w;
        cy += (p.y + q.y) * w;
    }
    Point2::new(cx / (3.0 * a2), cy / (3.0 * a2))
}

/// `true` when the closed polyline has no self-intersections (edges may
/// share endpoints only with their neighbours). `O(n^2)` — meant for
/// validation in tests, not hot paths.
pub fn is_simple(poly: &[Point2]) -> bool {
    let n = poly.len();
    if n < 3 {
        return false;
    }
    for i in 0..n {
        let si = Segment::new(poly[i], poly[(i + 1) % n]);
        for j in (i + 1)..n {
            let sj = Segment::new(poly[j], poly[(j + 1) % n]);
            let adjacent = j == i + 1 || (i == 0 && j == n - 1);
            if adjacent {
                if si.properly_intersects(&sj) {
                    return false;
                }
            } else if si.intersects(&sj) {
                return false;
            }
        }
    }
    true
}

/// Total perimeter length.
pub fn perimeter(poly: &[Point2]) -> f64 {
    let n = poly.len();
    (0..n).map(|i| poly[i].distance(poly[(i + 1) % n])).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    fn unit_square() -> Vec<Point2> {
        vec![p(0.0, 0.0), p(1.0, 0.0), p(1.0, 1.0), p(0.0, 1.0)]
    }

    #[test]
    fn area_and_orientation() {
        let sq = unit_square();
        assert_eq!(signed_area(&sq), 1.0);
        assert!(is_ccw(&sq));
        let mut cw = sq.clone();
        cw.reverse();
        assert_eq!(signed_area(&cw), -1.0);
        assert!(!is_ccw(&cw));
    }

    #[test]
    fn convexity() {
        assert!(is_convex_ccw(&unit_square()));
        let arrow = vec![
            p(0.0, 0.0),
            p(2.0, 0.0),
            p(1.0, 0.5),
            p(2.0, 2.0),
            p(0.0, 2.0),
        ];
        assert!(is_ccw(&arrow));
        assert!(!is_convex_ccw(&arrow));
    }

    #[test]
    fn containment() {
        let sq = unit_square();
        assert!(contains_point(&sq, p(0.5, 0.5)));
        assert!(!contains_point(&sq, p(1.5, 0.5)));
        assert!(!contains_point(&sq, p(-0.1, 0.5)));
        // Boundary points count as inside.
        assert!(contains_point(&sq, p(0.0, 0.5)));
        assert!(contains_point(&sq, p(1.0, 1.0)));
    }

    #[test]
    fn containment_concave() {
        // L-shaped polygon.
        let l = vec![
            p(0.0, 0.0),
            p(2.0, 0.0),
            p(2.0, 1.0),
            p(1.0, 1.0),
            p(1.0, 2.0),
            p(0.0, 2.0),
        ];
        assert!(contains_point(&l, p(0.5, 1.5)));
        assert!(contains_point(&l, p(1.5, 0.5)));
        assert!(!contains_point(&l, p(1.5, 1.5)));
    }

    #[test]
    fn centroid_of_square() {
        let c = centroid(&unit_square());
        assert!((c.x - 0.5).abs() < 1e-15);
        assert!((c.y - 0.5).abs() < 1e-15);
    }

    #[test]
    fn centroid_degenerate_falls_back_to_mean() {
        let line = vec![p(0.0, 0.0), p(1.0, 1.0), p(2.0, 2.0)];
        let c = centroid(&line);
        assert!((c.x - 1.0).abs() < 1e-15);
        assert!((c.y - 1.0).abs() < 1e-15);
    }

    #[test]
    fn simplicity() {
        assert!(is_simple(&unit_square()));
        // Bow-tie: self-intersecting.
        let bow = vec![p(0.0, 0.0), p(1.0, 1.0), p(1.0, 0.0), p(0.0, 1.0)];
        assert!(!is_simple(&bow));
    }

    #[test]
    fn perimeter_of_square() {
        assert_eq!(perimeter(&unit_square()), 4.0);
    }
}
