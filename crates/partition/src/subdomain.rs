//! Subdomains with dual sorted vertex storage (paper §II.D and §III).
//!
//! A subdomain stores its vertices twice — x-sorted and y-sorted — in
//! contiguous `Vec`s. This gives O(1) bounding boxes (first/last of each
//! order), O(1) median location along either axis, and O(n) comparison-free
//! splitting. The *projected* coordinate (paraboloid lift flattened onto
//! the plane perpendicular to the cut axis) lives inside the `Vertex`
//! itself rather than a side array, exactly as §III argues for cache
//! locality — it is recomputed at each split because it depends on the
//! median vertex.

use adm_geom::aabb::Aabb;
use adm_geom::hull::lower_hull_indices_sorted;
use adm_geom::point::Point2;
use adm_kernel::GlobalVertexId;

/// A boundary-layer vertex inside a subdomain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Vertex {
    /// Position in the plane.
    pub pos: Point2,
    /// Flattened paraboloid projection (valid only during a split).
    pub proj: f64,
    /// Global id in the caller's point array.
    pub id: u32,
    /// Marked when the vertex lies on a dividing Delaunay path.
    pub boundary: bool,
}

impl Vertex {
    /// Creates a vertex at `pos` with global id `id`.
    pub fn new(pos: Point2, id: u32) -> Self {
        Vertex {
            pos,
            proj: 0.0,
            id,
            boundary: false,
        }
    }
}

/// The axis the median *line* is parallel to. A `Y` cut axis means a
/// vertical median line: the x-range is split and the dividing path is a
/// lower hull over `(y, lift)` pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CutAxis {
    /// Horizontal median line (splits the y-range).
    X,
    /// Vertical median line (splits the x-range).
    Y,
}

/// Which side of a cut a child subdomain occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Coordinates strictly below the cut value (plus path vertices).
    Low,
    /// Coordinates at or above the cut value (plus path vertices).
    High,
}

/// One ancestor cut: a child keeps triangles whose circumcenter falls on
/// its side of every ancestor cut line (the Blelloch merge rule).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cut {
    /// Axis the median line is parallel to.
    pub axis: CutAxis,
    /// Coordinate of the median line (x for a vertical line, y for a
    /// horizontal one).
    pub at: f64,
    /// This subdomain's side.
    pub side: Side,
}

/// A decomposable subdomain.
#[derive(Debug, Clone)]
pub struct Subdomain {
    /// Vertices sorted lexicographically by `(x, y)`.
    pub x_sorted: Vec<Vertex>,
    /// Vertices sorted lexicographically by `(y, x)`.
    pub y_sorted: Vec<Vertex>,
    /// Ancestor cuts, root-first.
    pub cuts: Vec<Cut>,
    /// Recursion depth.
    pub level: u32,
}

impl Subdomain {
    /// Builds the root subdomain from a point set (duplicates merged).
    /// Vertex ids are positional indices into `points`.
    pub fn root(points: &[Point2]) -> Self {
        Self::build_root(
            points
                .iter()
                .enumerate()
                .map(|(i, &p)| Vertex::new(p, i as u32))
                .collect(),
        )
    }

    /// Builds the root subdomain where each vertex carries its arena
    /// identity (`ids[i]` for `points[i]`) instead of a positional index,
    /// so dividing-path vertices keep a stable global identity all the
    /// way through decompose → mesh → merge. `ids` must come from one
    /// arena interning of `points`, which guarantees duplicate
    /// coordinates carry equal ids and the dedup below cannot lose
    /// identity information.
    pub fn root_with_ids(points: &[Point2], ids: &[GlobalVertexId]) -> Self {
        assert_eq!(points.len(), ids.len(), "ids must parallel points");
        Self::build_root(
            points
                .iter()
                .zip(ids)
                .map(|(&p, &id)| Vertex::new(p, id.raw()))
                .collect(),
        )
    }

    fn build_root(mut x_sorted: Vec<Vertex>) -> Self {
        // Stable sort + first-of-run dedup keeps the lowest-index (or
        // first-interned) duplicate — the same winner an arena's
        // first-occurrence interning picks.
        x_sorted.sort_by(|a, b| a.pos.lex_cmp(b.pos));
        x_sorted.dedup_by(|a, b| a.pos == b.pos);
        let mut y_sorted = x_sorted.clone();
        y_sorted.sort_by(|a, b| {
            a.pos
                .y
                .total_cmp(&b.pos.y)
                .then_with(|| a.pos.x.total_cmp(&b.pos.x))
        });
        Subdomain {
            x_sorted,
            y_sorted,
            cuts: Vec::new(),
            level: 0,
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.x_sorted.len()
    }

    /// `true` when the subdomain has no vertices.
    pub fn is_empty(&self) -> bool {
        self.x_sorted.is_empty()
    }

    /// Bounding box in O(1) from the sorted extremes. (After
    /// [`Subdomain::shed_y_order`] the y-range falls back to a linear
    /// scan; shed subdomains are leaves, so this path is cold.)
    pub fn bbox(&self) -> Aabb {
        let xmin = self.x_sorted.first().map_or(0.0, |v| v.pos.x);
        let xmax = self.x_sorted.last().map_or(0.0, |v| v.pos.x);
        let (ymin, ymax) = if self.y_sorted.is_empty() {
            self.x_sorted
                .iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| {
                    (lo.min(v.pos.y), hi.max(v.pos.y))
                })
        } else {
            (
                self.y_sorted.first().map_or(0.0, |v| v.pos.y),
                self.y_sorted.last().map_or(0.0, |v| v.pos.y),
            )
        };
        Aabb::new(Point2::new(xmin, ymin), Point2::new(xmax, ymax))
    }

    /// Number of internal (non-path) vertices.
    pub fn internal_count(&self) -> usize {
        self.x_sorted.iter().filter(|v| !v.boundary).count()
    }

    /// Ids of the vertices that lie on some dividing Delaunay path — the
    /// interface set a merger must reconcile, everything else being
    /// private to one subdomain.
    pub fn boundary_ids(&self) -> impl Iterator<Item = u32> + '_ {
        self.x_sorted.iter().filter(|v| v.boundary).map(|v| v.id)
    }

    /// Chooses the cut axis: the median line runs parallel to the
    /// *shortest* bounding-box edge so the long direction is split,
    /// avoiding long skinny subdomains that are expensive for the
    /// divide-and-conquer triangulator's merge step (§II.D).
    pub fn choose_cut_axis(&self) -> CutAxis {
        let b = self.bbox();
        if b.width() >= b.height() {
            CutAxis::Y // vertical median line, split x
        } else {
            CutAxis::X
        }
    }

    /// Splits the subdomain at the median vertex along `axis`, computing
    /// the dividing Delaunay path via the flattened-paraboloid lower hull.
    /// Returns `(low, high, path)` where `path` lists the global ids of
    /// the dividing-path vertices in hull order.
    pub fn split(&mut self, axis: CutAxis) -> (Subdomain, Subdomain, Vec<u32>) {
        let n = self.len();
        assert!(n >= 2, "cannot split a subdomain with {n} vertices");
        // Median vertex in O(1) from the primary-axis-sorted order.
        let (primary, hull_order): (&mut Vec<Vertex>, &mut Vec<Vertex>) = match axis {
            CutAxis::Y => (&mut self.x_sorted, &mut self.y_sorted),
            CutAxis::X => (&mut self.y_sorted, &mut self.x_sorted),
        };
        let median = primary[n / 2].pos;
        let cut_at = match axis {
            CutAxis::Y => median.x,
            CutAxis::X => median.y,
        };

        // Project onto the paraboloid centered at the median vertex and
        // flatten: the lift is stored in the vertices themselves (§III).
        for v in hull_order.iter_mut() {
            let d = v.pos - median;
            v.proj = d.norm_sq();
        }
        for v in primary.iter_mut() {
            let d = v.pos - median;
            v.proj = d.norm_sq();
        }

        // Hull input: (along-line coordinate, lift), already sorted by the
        // along-line coordinate; equal-coordinate runs are ordered by the
        // secondary axis, not the lift, so fix those runs locally.
        let mut flat: Vec<Point2> = hull_order
            .iter()
            .map(|v| match axis {
                CutAxis::Y => Point2::new(v.pos.y, v.proj),
                CutAxis::X => Point2::new(v.pos.x, v.proj),
            })
            .collect();
        let mut order: Vec<u32> = (0..n as u32).collect();
        let mut i = 0;
        while i < n {
            let mut j = i + 1;
            while j < n && flat[j].x == flat[i].x {
                j += 1;
            }
            if j - i > 1 {
                order[i..j].sort_by(|&a, &b| flat[a as usize].y.total_cmp(&flat[b as usize].y));
                let snap: Vec<Point2> = order[i..j].iter().map(|&k| flat[k as usize]).collect();
                flat[i..j].copy_from_slice(&snap);
            }
            i = j;
        }
        let hull_idx = lower_hull_indices_sorted(&flat);
        let path: Vec<u32> = hull_idx
            .iter()
            .map(|&k| hull_order[order[k] as usize].id)
            .collect();
        let path_set: std::collections::HashSet<u32> = path.iter().copied().collect();

        // Mark path vertices in both orders.
        for v in primary.iter_mut() {
            if path_set.contains(&v.id) {
                v.boundary = true;
            }
        }
        for v in hull_order.iter_mut() {
            if path_set.contains(&v.id) {
                v.boundary = true;
            }
        }

        // Partition both sorted orders in one pass each; path vertices go
        // to both children. Equal-to-cut coordinates go High, matching the
        // primary-axis "split at the median index" rule.
        let coord = |v: &Vertex| match axis {
            CutAxis::Y => v.pos.x,
            CutAxis::X => v.pos.y,
        };
        let distribute = |src: &[Vertex]| -> (Vec<Vertex>, Vec<Vertex>) {
            let mut low = Vec::with_capacity(src.len() / 2 + 8);
            let mut high = Vec::with_capacity(src.len() / 2 + 8);
            for v in src {
                let on_path = path_set.contains(&v.id);
                if coord(v) < cut_at {
                    low.push(*v);
                    if on_path {
                        high.push(*v);
                    }
                } else {
                    high.push(*v);
                    if on_path {
                        low.push(*v);
                    }
                }
            }
            (low, high)
        };
        let (lx, hx) = distribute(&self.x_sorted);
        let (ly, hy) = distribute(&self.y_sorted);

        let mut lcuts = self.cuts.clone();
        lcuts.push(Cut {
            axis,
            at: cut_at,
            side: Side::Low,
        });
        let mut hcuts = self.cuts.clone();
        hcuts.push(Cut {
            axis,
            at: cut_at,
            side: Side::High,
        });
        let low = Subdomain {
            x_sorted: lx,
            y_sorted: ly,
            cuts: lcuts,
            level: self.level + 1,
        };
        let high = Subdomain {
            x_sorted: hx,
            y_sorted: hy,
            cuts: hcuts,
            level: self.level + 1,
        };
        (low, high, path)
    }

    /// Estimated triangulation cost (used by the load balancer): the
    /// expected triangle count `2n`.
    pub fn cost(&self) -> u64 {
        2 * self.len() as u64
    }

    /// Bytes a work transfer of this subdomain moves, reflecting the
    /// paper's §IV communication optimizations:
    ///
    /// * projected coordinates are never sent (they depend on the median
    ///   vertex, which changes per split) — a `Vertex` travels as
    ///   position + id + flag, not its in-memory size;
    /// * a sufficiently decomposed subdomain (after [`Subdomain::shed_y_order`])
    ///   ships only its x-sorted vertices — exactly what the triangulator
    ///   needs — halving the payload.
    pub fn transfer_bytes(&self) -> u64 {
        // pos (16) + id (4) + boundary flag (1), padded to 24.
        const WIRE_VERTEX: u64 = 24;
        let copies = if self.y_sorted.is_empty() { 1 } else { 2 };
        copies * self.len() as u64 * WIRE_VERTEX + 64
    }

    /// Drops the y-sorted copy. Called once a subdomain is sufficiently
    /// decomposed: from then on it only needs the x-sorted vertices (the
    /// triangulator's input), which halves transfer payloads (paper §IV).
    pub fn shed_y_order(&mut self) {
        self.y_sorted = Vec::new();
        self.y_sorted.shrink_to_fit();
    }
}

/// One node of the binary merge-reduction schedule over a path-sorted
/// task list: an in-order binary tree whose internal nodes are exactly
/// the join points of the decomposition tree (sibling subtrees under
/// their shared path prefix), re-balanced binarily where a tree level
/// has more than two children (the root's quadrant/near-body seeds).
///
/// Because the covered ranges are contiguous and in order, *any*
/// reduction over this tree with an associative combine yields the same
/// result as the sequential left fold — the tree only decides which
/// merges may run concurrently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReductionNode {
    /// First task index covered (inclusive).
    pub lo: usize,
    /// One past the last task index covered.
    pub hi: usize,
    /// `None` for a leaf (a single task's mesh).
    pub children: Option<(Box<ReductionNode>, Box<ReductionNode>)>,
}

impl ReductionNode {
    /// Number of internal (merge-performing) nodes.
    pub fn internal_count(&self) -> usize {
        match &self.children {
            None => 0,
            Some((l, r)) => 1 + l.internal_count() + r.internal_count(),
        }
    }

    /// Tree depth in merge steps (0 for a leaf): the critical-path
    /// length of the reduction.
    pub fn depth(&self) -> usize {
        match &self.children {
            None => 0,
            Some((l, r)) => 1 + l.depth().max(r.depth()),
        }
    }
}

/// Builds the reduction schedule for a lexicographically sorted list of
/// task-tree paths (the order the sequential merge consumes them in).
///
/// # Panics
/// Panics if `paths` is empty or not sorted.
pub fn reduction_plan(paths: &[&[u8]]) -> ReductionNode {
    assert!(!paths.is_empty(), "reduction plan over no tasks");
    assert!(
        paths.windows(2).all(|w| w[0] <= w[1]),
        "paths must be sorted"
    );
    plan_range(paths, 0, paths.len(), 0)
}

fn plan_range(paths: &[&[u8]], lo: usize, hi: usize, depth: usize) -> ReductionNode {
    if hi - lo == 1 {
        return ReductionNode {
            lo,
            hi,
            children: None,
        };
    }
    // Contiguous runs sharing the same path byte at this depth (a path
    // ending here is its own run — it sorts first among its subtree).
    let mut runs: Vec<(usize, usize)> = Vec::new();
    let mut start = lo;
    for i in lo + 1..hi {
        if paths[i].get(depth) != paths[start].get(depth) {
            runs.push((start, i));
            start = i;
        }
    }
    runs.push((start, hi));
    if runs.len() == 1 {
        // Identical prefixes can only repeat so long as paths stay
        // distinct, so this recursion terminates.
        return plan_range(paths, lo, hi, depth + 1);
    }
    plan_runs(paths, &runs, depth)
}

/// Balanced in-order binary combination of >= 2 sibling runs.
fn plan_runs(paths: &[&[u8]], runs: &[(usize, usize)], depth: usize) -> ReductionNode {
    if runs.len() == 1 {
        let (lo, hi) = runs[0];
        return plan_range(paths, lo, hi, depth + 1);
    }
    let mid = runs.len() / 2;
    let left = plan_runs(paths, &runs[..mid], depth);
    let right = plan_runs(paths, &runs[mid..], depth);
    ReductionNode {
        lo: left.lo,
        hi: right.hi,
        children: Some((Box::new(left), Box::new(right))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    fn grid(nx: usize, ny: usize) -> Vec<Point2> {
        let mut v = Vec::new();
        for i in 0..nx {
            for j in 0..ny {
                v.push(p(i as f64, j as f64 * 0.5));
            }
        }
        v
    }

    #[test]
    fn root_sorted_and_deduped() {
        let pts = vec![p(2.0, 0.0), p(0.0, 1.0), p(2.0, 0.0), p(1.0, -1.0)];
        let s = Subdomain::root(&pts);
        assert_eq!(s.len(), 3);
        assert!(s
            .x_sorted
            .windows(2)
            .all(|w| w[0].pos.lex_cmp(w[1].pos).is_lt()));
        assert!(s
            .y_sorted
            .windows(2)
            .all(|w| (w[0].pos.y, w[0].pos.x) <= (w[1].pos.y, w[1].pos.x)));
    }

    #[test]
    fn root_with_ids_carries_arena_identity() {
        let pts = vec![p(2.0, 0.0), p(0.0, 1.0), p(2.0, 0.0), p(1.0, -1.0)];
        // Arena-style ids: the duplicate maps to the first occurrence.
        let ids = [7u32, 3, 7, 9].map(GlobalVertexId);
        let mut s = Subdomain::root_with_ids(&pts, &ids);
        assert_eq!(s.len(), 3);
        let mut got: Vec<u32> = s.x_sorted.iter().map(|v| v.id).collect();
        got.sort_unstable();
        assert_eq!(got, vec![3, 7, 9]);
        // Splitting marks path vertices; boundary_ids reports exactly those.
        let big = Subdomain::root_with_ids(
            &grid(8, 8),
            &(100..164).map(GlobalVertexId).collect::<Vec<_>>(),
        );
        let mut big = big;
        let (_, _, path) = big.split(CutAxis::Y);
        let mut from_path = path.clone();
        from_path.sort_unstable();
        let mut from_accessor: Vec<u32> = big.boundary_ids().collect();
        from_accessor.sort_unstable();
        assert_eq!(from_accessor, from_path);
        assert!(from_path.iter().all(|&id| (100..164).contains(&id)));
        let _ = s.split(CutAxis::X);
    }

    #[test]
    fn bbox_is_constant_time_and_correct() {
        let s = Subdomain::root(&grid(5, 3));
        let b = s.bbox();
        assert_eq!(b.min, p(0.0, 0.0));
        assert_eq!(b.max, p(4.0, 1.0));
    }

    #[test]
    fn cut_axis_follows_shortest_bbox_edge() {
        // Wide domain: vertical median line.
        let s = Subdomain::root(&grid(20, 3));
        assert_eq!(s.choose_cut_axis(), CutAxis::Y);
        let t = Subdomain::root(&grid(3, 40));
        assert_eq!(t.choose_cut_axis(), CutAxis::X);
    }

    #[test]
    fn split_partitions_and_keeps_orders() {
        let mut s = Subdomain::root(&grid(10, 4));
        let n0 = s.len();
        let (lo, hi, path) = s.split(CutAxis::Y);
        assert!(!path.is_empty());
        // Every original vertex appears in exactly one child (path
        // vertices in both).
        assert_eq!(lo.len() + hi.len(), n0 + path.len());
        // Sorted orders preserved in both children.
        for c in [&lo, &hi] {
            assert!(c
                .x_sorted
                .windows(2)
                .all(|w| w[0].pos.lex_cmp(w[1].pos).is_le()));
            assert!(c
                .y_sorted
                .windows(2)
                .all(|w| (w[0].pos.y, w[0].pos.x) <= (w[1].pos.y, w[1].pos.x)));
            // x/y arrays hold the same vertex sets.
            let mut a: Vec<u32> = c.x_sorted.iter().map(|v| v.id).collect();
            let mut b: Vec<u32> = c.y_sorted.iter().map(|v| v.id).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
        // Path vertices are marked boundary in both children.
        for c in [&lo, &hi] {
            for v in &c.x_sorted {
                if path.contains(&v.id) {
                    assert!(v.boundary);
                }
            }
        }
        // Sides are consistent with the cut.
        let cut = lo.cuts.last().unwrap();
        for v in &lo.x_sorted {
            assert!(v.pos.x < cut.at || path.contains(&v.id));
        }
        for v in &hi.x_sorted {
            assert!(v.pos.x >= cut.at || path.contains(&v.id));
        }
    }

    #[test]
    fn path_endpoints_are_extremes() {
        // The dividing path must run from the minimum to the maximum of
        // the along-line coordinate (it separates the two sides fully).
        let mut s = Subdomain::root(&grid(8, 8));
        let (_, _, path) = s.split(CutAxis::Y);
        let pos_of = |id: u32| s.x_sorted.iter().find(|v| v.id == id).map(|v| v.pos);
        let first = pos_of(path[0]).unwrap();
        let last = pos_of(*path.last().unwrap()).unwrap();
        let ys: Vec<f64> = s.x_sorted.iter().map(|v| v.pos.y).collect();
        let ymin = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        let ymax = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(first.y, ymin);
        assert_eq!(last.y, ymax);
    }

    #[test]
    fn cost_scales_with_size() {
        let s = Subdomain::root(&grid(10, 10));
        assert_eq!(s.cost(), 200);
    }

    #[test]
    fn shedding_y_order_halves_transfers() {
        let mut s = Subdomain::root(&grid(10, 10));
        let full = s.transfer_bytes();
        let bbox_before = s.bbox();
        s.shed_y_order();
        let slim = s.transfer_bytes();
        assert!(slim < full);
        assert_eq!(slim - 64, (full - 64) / 2);
        // The bounding box survives the shed (linear fallback).
        assert_eq!(s.bbox(), bbox_before);
        // The triangulator input is untouched.
        assert_eq!(s.len(), 100);
    }

    #[test]
    fn transfer_excludes_projected_coordinates() {
        // The wire format is 24 bytes/vertex; the in-memory Vertex is
        // larger because it carries the projection scratch field.
        let s = Subdomain::root(&grid(5, 5));
        assert!(std::mem::size_of::<Vertex>() as u64 * 2 * 25 > s.transfer_bytes() - 64);
    }

    /// In-order leaves of a reduction plan must be 0..n exactly once.
    fn collect_leaves(node: &ReductionNode, out: &mut Vec<usize>) {
        match &node.children {
            None => {
                assert_eq!(node.lo + 1, node.hi);
                out.push(node.lo);
            }
            Some((l, r)) => {
                assert_eq!((node.lo, node.hi), (l.lo, r.hi));
                assert_eq!(l.hi, r.lo, "children must be contiguous");
                collect_leaves(l, out);
                collect_leaves(r, out);
            }
        }
    }

    #[test]
    fn reduction_plan_covers_pipeline_shaped_paths() {
        // The pipeline's merge list: BL mesh at [0], four quadrant
        // subtrees, the near-body task — with binary splits below.
        let paths: Vec<Vec<u8>> = vec![
            vec![0],
            vec![1, 0, 0],
            vec![1, 0, 1],
            vec![1, 1],
            vec![2],
            vec![3, 0],
            vec![3, 1, 0],
            vec![3, 1, 1],
            vec![4],
            vec![5],
        ];
        let refs: Vec<&[u8]> = paths.iter().map(|p| p.as_slice()).collect();
        let plan = reduction_plan(&refs);
        let mut leaves = Vec::new();
        collect_leaves(&plan, &mut leaves);
        assert_eq!(leaves, (0..paths.len()).collect::<Vec<_>>());
        assert_eq!(plan.internal_count(), paths.len() - 1);
        // Balanced over the 6 top-level seeds: far shallower than the
        // length-9 chain of the sequential fold.
        assert!(plan.depth() <= 5, "depth {} too deep", plan.depth());
    }

    #[test]
    fn reduction_plan_single_task_is_a_leaf() {
        let plan = reduction_plan(&[&[0u8][..]]);
        assert_eq!(plan.internal_count(), 0);
        assert_eq!((plan.lo, plan.hi), (0, 1));
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn reduction_plan_rejects_unsorted_paths() {
        let _ = reduction_plan(&[&[2u8][..], &[1u8][..]]);
    }
}
