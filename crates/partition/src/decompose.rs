//! Recursive decomposition and independent subdomain triangulation.
//!
//! The decomposition is used as a **coarse partitioner** (paper §II.D):
//! recursion stops when a subdomain has no internal vertices, falls below a
//! vertex tolerance, or reaches a recursion level derived from the process
//! count. Each leaf is then triangulated independently (with the sorted
//! input fast path — the sort Triangle would do is already maintained) and
//! the per-leaf triangulations are merged with the Blelloch circumcenter
//! rule: a leaf keeps exactly the triangles whose circumcenter lies on its
//! side of every ancestor cut line.

use crate::subdomain::{Cut, CutAxis, Side, Subdomain};
use adm_delaunay::divconq::{
    delaunay_rec, merge_hulls, prepare_input, triangulate_dc, DcTriangulation,
};
use adm_delaunay::quadedge::EdgePool;
use adm_delaunay::quality::circumcenter;
use adm_geom::point::Point2;
use adm_mpirt::Pool;

/// Stopping criteria for the coarse partitioner.
#[derive(Debug, Clone, Copy)]
pub struct DecomposeParams {
    /// Stop when a subdomain has fewer vertices than this.
    pub min_vertices: usize,
    /// Stop at this recursion depth (the paper derives it from the number
    /// of processes).
    pub max_level: u32,
}

impl DecomposeParams {
    /// Parameters that produce at least `target_subdomains` leaves on
    /// reasonably balanced inputs: depth `ceil(log2(target))`.
    pub fn for_subdomain_count(target_subdomains: usize) -> Self {
        let levels = usize::BITS - target_subdomains.next_power_of_two().leading_zeros() - 1;
        DecomposeParams {
            min_vertices: 8,
            max_level: levels,
        }
    }
}

/// Result of decomposing a point set.
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// Leaf subdomains, ready for independent triangulation.
    pub leaves: Vec<Subdomain>,
    /// All dividing paths (global vertex ids, hull order), root-first.
    pub paths: Vec<Vec<u32>>,
}

/// Decomposes `root` until every leaf satisfies a stopping criterion.
pub fn decompose(root: Subdomain, params: &DecomposeParams) -> Decomposition {
    let mut leaves = Vec::new();
    let mut paths = Vec::new();
    let mut stack = vec![root];
    while let Some(mut s) = stack.pop() {
        let stop = s.level >= params.max_level
            || s.len() < params.min_vertices.max(4)
            || s.internal_count() == 0;
        if stop {
            leaves.push(s);
            continue;
        }
        let axis = s.choose_cut_axis();
        let (lo, hi, path) = s.split(axis);
        paths.push(path);
        stack.push(lo);
        stack.push(hi);
    }
    Decomposition { leaves, paths }
}

/// Triangulates one leaf independently and filters by the circumcenter
/// rule. Returns triangles as **global** vertex-id triples, in canonical
/// order (smallest id leading each CCW cycle, triples sorted).
pub fn triangulate_leaf(leaf: &Subdomain) -> Vec<[u32; 3]> {
    let pts: Vec<Point2> = leaf.x_sorted.iter().map(|v| v.pos).collect();
    // The x-sorted order is maintained across splits, so the sort inside
    // the triangulator is skipped (§III).
    let dc = triangulate_dc(&pts, true);
    filter_leaf_triangles(leaf, &dc)
}

/// [`triangulate_leaf`] with the divide-and-conquer recursion forked
/// onto `pool` at its top vertical cuts. The fork points reuse the
/// sequential kernel's exact `lo + n/2` splits, so the merge DAG — and
/// with exact predicates, the triangle set — is identical to
/// [`triangulate_leaf`]'s; the canonical output order then makes the
/// two byte-identical at every thread count.
pub fn triangulate_leaf_pooled(leaf: &Subdomain, pool: &Pool) -> Vec<[u32; 3]> {
    let pts: Vec<Point2> = leaf.x_sorted.iter().map(|v| v.pos).collect();
    let dc = triangulate_dc_pooled(&pts, true, pool);
    filter_leaf_triangles(leaf, &dc)
}

/// Forked variant of [`triangulate_dc`]: the first ~`log2(threads)`
/// recursion levels fork left/right halves onto `pool`, each half
/// building its own [`EdgePool`], grafted together and joined at the
/// Guibas–Stolfi hull-merge step.
pub fn triangulate_dc_pooled(
    input: &[Point2],
    assume_sorted: bool,
    pool: &Pool,
) -> DcTriangulation {
    let (points, input_index) = prepare_input(input, assume_sorted);
    let threads = pool.threads();
    // One extra level of slack over the thread count so work-stealing
    // can even out unequal halves; 0 levels on the inline pool.
    let fork_levels = if threads == 0 {
        0
    } else {
        usize::BITS - threads.next_power_of_two().leading_zeros()
    };
    if points.len() < 2 {
        return DcTriangulation {
            pool: EdgePool::with_capacity(8),
            points,
            input_index,
            hull_edge: None,
        };
    }
    let (ep, le, _re) = dc_forked(&points, 0, points.len(), fork_levels, pool);
    DcTriangulation {
        pool: ep,
        points,
        input_index,
        hull_edge: Some(le),
    }
}

/// Minimum half size worth forking: below this, pool bookkeeping
/// outweighs the triangulation work.
const FORK_GRAIN: usize = 256;

fn dc_forked(
    pts: &[Point2],
    lo: usize,
    hi: usize,
    level: u32,
    pool: &Pool,
) -> (EdgePool, u32, u32) {
    let n = hi - lo;
    if level == 0 || n < FORK_GRAIN {
        let mut ep = EdgePool::with_capacity(3 * n + 8);
        let (le, re) = delaunay_rec(&mut ep, pts, lo, hi);
        return (ep, le, re);
    }
    // The sequential kernel's exact split point — required for the
    // identical-triangle-set guarantee.
    let mid = lo + n / 2;
    let ((mut lp, ldo, ldi), (rp, rdi, rdo)) = pool.join(
        || dc_forked(pts, lo, mid, level - 1, pool),
        || dc_forked(pts, mid, hi, level - 1, pool),
    );
    let off = lp.graft(rp);
    let (le, re) = merge_hulls(&mut lp, pts, ldo, ldi, rdi + off, rdo + off);
    (lp, le, re)
}

/// Circumcenter-rule filter over a leaf's triangulation, emitting
/// canonically ordered global-id triples.
fn filter_leaf_triangles(leaf: &Subdomain, dc: &DcTriangulation) -> Vec<[u32; 3]> {
    let tris = dc.triangles();
    let mut out = Vec::with_capacity(tris.len());
    for t in &tris {
        // Positions via the triangulator's (deduplicated) point list.
        let (pa, pb, pc) = (
            dc.points[t[0] as usize],
            dc.points[t[1] as usize],
            dc.points[t[2] as usize],
        );
        // Canonical circumcenter: evaluate with vertices ordered by global
        // id so both leaves sharing an all-path triangle compute identical
        // bits and make the same keep/drop decision.
        let gid = |k: u32| leaf.x_sorted[dc.input_index[k as usize] as usize].id;
        let (mut ga, mut gb, mut gc) = (gid(t[0]), gid(t[1]), gid(t[2]));
        let mut ppa = pa;
        let mut ppb = pb;
        let mut ppc = pc;
        // Sort the (id, pos) triples by id with a tiny network.
        if ga > gb {
            std::mem::swap(&mut ga, &mut gb);
            std::mem::swap(&mut ppa, &mut ppb);
        }
        if gb > gc {
            std::mem::swap(&mut gb, &mut gc);
            std::mem::swap(&mut ppb, &mut ppc);
        }
        if ga > gb {
            std::mem::swap(&mut ga, &mut gb);
            std::mem::swap(&mut ppa, &mut ppb);
        }
        let Some(cc) = circumcenter(ppa, ppb, ppc) else {
            continue;
        };
        if leaf.cuts.iter().all(|cut| on_side(cc, cut)) {
            // Emit in the triangulator's (CCW) orientation; the id-sorted
            // triple was only for the canonical circumcenter.
            out.push([gid(t[0]), gid(t[1]), gid(t[2])]);
        }
    }
    // Canonical order: the quad-edge face walk emits triangles in pool
    // slot order, which differs between the sequential and forked
    // drivers (same triangle *set*, different slot numbering). Rotating
    // each CCW cycle to its smallest id and sorting the triples erases
    // that, so every driver returns byte-identical output.
    for t in &mut out {
        let lead = (0..3).min_by_key(|&k| t[k]).unwrap();
        t.rotate_left(lead);
    }
    out.sort_unstable();
    out
}

#[inline]
fn on_side(cc: Point2, cut: &Cut) -> bool {
    let coord = match cut.axis {
        CutAxis::Y => cc.x,
        CutAxis::X => cc.y,
    };
    match cut.side {
        Side::Low => coord < cut.at,
        Side::High => coord >= cut.at,
    }
}

/// Triangulates every leaf and merges the results (deduplicating the rare
/// identical all-path triangles that satisfy both sides' filters).
pub fn triangulate_all(leaves: &[Subdomain]) -> Vec<[u32; 3]> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for leaf in leaves {
        for t in triangulate_leaf(leaf) {
            let mut key = t;
            key.sort_unstable();
            if seen.insert(key) {
                out.push(t);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use adm_geom::predicates::{in_circle, orient2d};

    fn p(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    fn canon(tris: &[[u32; 3]]) -> Vec<[u32; 3]> {
        let mut v: Vec<[u32; 3]> = tris
            .iter()
            .map(|t| {
                let mut s = *t;
                s.sort_unstable();
                s
            })
            .collect();
        v.sort();
        v
    }

    /// Direct global DT, reported in global ids.
    fn direct_dt(points: &[Point2]) -> Vec<[u32; 3]> {
        let dc = triangulate_dc(points, false);
        dc.triangles()
            .iter()
            .map(|t| {
                [
                    dc.input_index[t[0] as usize],
                    dc.input_index[t[1] as usize],
                    dc.input_index[t[2] as usize],
                ]
            })
            .collect()
    }

    fn random_points(n: usize, seed: u64) -> Vec<Point2> {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| p(rng.gen_range(-10.0..10.0), rng.gen_range(-4.0..4.0)))
            .collect()
    }

    #[test]
    fn decomposition_produces_expected_leaf_count() {
        let pts = random_points(500, 1);
        let d = decompose(
            Subdomain::root(&pts),
            &DecomposeParams {
                min_vertices: 8,
                max_level: 4,
            },
        );
        assert_eq!(d.leaves.len(), 16);
        assert_eq!(d.paths.len(), 15);
    }

    #[test]
    fn merged_triangulation_equals_direct_dt_random() {
        for seed in [2u64, 3, 4] {
            let pts = random_points(300, seed);
            let d = decompose(
                Subdomain::root(&pts),
                &DecomposeParams {
                    min_vertices: 8,
                    max_level: 3,
                },
            );
            let merged = triangulate_all(&d.leaves);
            let direct = direct_dt(&pts);
            assert_eq!(
                canon(&merged),
                canon(&direct),
                "seed {seed}: merged != direct"
            );
        }
    }

    #[test]
    fn merged_triangulation_on_grid_is_valid_delaunay() {
        // Grids are maximally cocircular: the merged result may pick
        // different diagonals than the direct DT, but it must tile the
        // domain and satisfy the (weak) empty-circle property.
        let mut pts = Vec::new();
        for i in 0..12 {
            for j in 0..12 {
                pts.push(p(i as f64, j as f64));
            }
        }
        let d = decompose(
            Subdomain::root(&pts),
            &DecomposeParams {
                min_vertices: 8,
                max_level: 3,
            },
        );
        let merged = triangulate_all(&d.leaves);
        // Count: T = 2n - 2 - h with n = 144, h = 44.
        assert_eq!(merged.len(), 2 * 144 - 2 - 44);
        // Area tiling: total = 11 x 11.
        let total: f64 = merged
            .iter()
            .map(|t| {
                0.5 * (pts[t[1] as usize] - pts[t[0] as usize])
                    .cross(pts[t[2] as usize] - pts[t[0] as usize])
            })
            .sum();
        assert!((total - 121.0).abs() < 1e-9);
        // Weak Delaunay: no vertex strictly inside any circumcircle.
        for t in &merged {
            let (a, b, c) = (pts[t[0] as usize], pts[t[1] as usize], pts[t[2] as usize]);
            assert!(orient2d(a, b, c) > 0.0);
            for (i, &q) in pts.iter().enumerate() {
                if t.contains(&(i as u32)) {
                    continue;
                }
                assert!(!in_circle(a, b, c, q), "grid merge violates Delaunay");
            }
        }
    }

    #[test]
    fn anisotropic_layer_point_cloud() {
        // Boundary-layer-like points: extreme anisotropy (spacing 1e-3
        // normal, 0.1 tangential).
        let mut pts = Vec::new();
        for i in 0..60 {
            for k in 0..12 {
                pts.push(p(i as f64 * 0.1, (k as f64).exp2() * 1e-3));
            }
        }
        let d = decompose(
            Subdomain::root(&pts),
            &DecomposeParams {
                min_vertices: 8,
                max_level: 4,
            },
        );
        let merged = triangulate_all(&d.leaves);
        let direct = direct_dt(&pts);
        assert_eq!(canon(&merged), canon(&direct));
    }

    #[test]
    fn no_internal_vertices_stops_decomposition() {
        // Tiny subdomain: after one split everything is on the path or
        // leaves are tiny; recursion must terminate without panicking.
        let pts = random_points(10, 9);
        let d = decompose(
            Subdomain::root(&pts),
            &DecomposeParams {
                min_vertices: 2,
                max_level: 30,
            },
        );
        assert!(!d.leaves.is_empty());
        let merged = triangulate_all(&d.leaves);
        let direct = direct_dt(&pts);
        assert_eq!(canon(&merged), canon(&direct));
    }

    #[test]
    fn cuts_run_parallel_to_the_shortest_bbox_edge() {
        // Wide cloud (20 x 1): the median line must be vertical (CutAxis::Y,
        // splitting x) at every level while the pieces stay wide.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let wide: Vec<Point2> = (0..400)
            .map(|_| p(rng.gen_range(0.0..20.0), rng.gen_range(0.0..1.0)))
            .collect();
        let params = DecomposeParams {
            min_vertices: 4,
            max_level: 2,
        };
        let d = decompose(Subdomain::root(&wide), &params);
        assert_eq!(d.leaves.len(), 4);
        for leaf in &d.leaves {
            assert_eq!(leaf.cuts.len(), 2);
            for cut in &leaf.cuts {
                assert_eq!(
                    cut.axis,
                    CutAxis::Y,
                    "wide cloud must be split along x (vertical median line)"
                );
            }
        }
        // Tall cloud (1 x 20): the transpose — horizontal median lines.
        let tall: Vec<Point2> = wide.iter().map(|q| p(q.y, q.x)).collect();
        let d = decompose(Subdomain::root(&tall), &params);
        for leaf in &d.leaves {
            for cut in &leaf.cuts {
                assert_eq!(
                    cut.axis,
                    CutAxis::X,
                    "tall cloud must be split along y (horizontal median line)"
                );
            }
        }
    }

    #[test]
    fn isotropic_cloud_alternates_cut_axes() {
        // On a roughly square cloud, halving one direction makes the other
        // the longest edge, so consecutive cuts must alternate — this is
        // exactly what keeps leaves from going skinny.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let pts: Vec<Point2> = (0..600)
            .map(|_| p(rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)))
            .collect();
        let d = decompose(
            Subdomain::root(&pts),
            &DecomposeParams {
                min_vertices: 4,
                max_level: 2,
            },
        );
        assert_eq!(d.leaves.len(), 4);
        for leaf in &d.leaves {
            assert_eq!(leaf.cuts.len(), 2);
            assert_ne!(
                leaf.cuts[0].axis, leaf.cuts[1].axis,
                "consecutive cuts on a square cloud must alternate axes"
            );
        }
    }

    #[test]
    fn pooled_leaf_triangulation_is_byte_identical_to_sequential() {
        // The tentpole invariant at the triangulator level: forked
        // divide-and-conquer must produce *identical* output, not just
        // an equivalent triangulation — at every thread count, on
        // clouds large enough to actually fork (> FORK_GRAIN).
        for seed in [7u64, 8] {
            let pts = random_points(1200, seed);
            let root = Subdomain::root(&pts);
            let seq = triangulate_leaf(&root);
            assert!(!seq.is_empty());
            for threads in [0usize, 1, 2, 4] {
                let pool = Pool::new(threads);
                let got = triangulate_leaf_pooled(&root, &pool);
                assert_eq!(got, seq, "seed {seed}, threads {threads}");
            }
        }
    }

    #[test]
    fn pooled_leaf_respects_circumcenter_filter() {
        // Forking must not disturb the Blelloch keep/drop rule: pooled
        // per-leaf results still reassemble into the direct DT.
        let pts = random_points(900, 11);
        let d = decompose(
            Subdomain::root(&pts),
            &DecomposeParams {
                min_vertices: 8,
                max_level: 2,
            },
        );
        let pool = Pool::new(2);
        let mut seen = std::collections::HashSet::new();
        let mut merged = Vec::new();
        for leaf in &d.leaves {
            for t in triangulate_leaf_pooled(leaf, &pool) {
                let mut key = t;
                key.sort_unstable();
                if seen.insert(key) {
                    merged.push(t);
                }
            }
        }
        assert_eq!(canon(&merged), canon(&direct_dt(&pts)));
    }

    #[test]
    fn params_for_subdomain_count() {
        assert_eq!(DecomposeParams::for_subdomain_count(16).max_level, 4);
        assert_eq!(DecomposeParams::for_subdomain_count(128).max_level, 7);
        assert_eq!(DecomposeParams::for_subdomain_count(100).max_level, 7);
    }
}
