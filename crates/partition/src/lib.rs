//! # adm-partition — projection-based parallel domain decomposition
//!
//! The parallel triangulation of the anisotropic boundary layer point
//! cloud (paper §II.D): subdomains with dual sorted contiguous storage,
//! median cuts along the shortest bounding-box edge, dividing Delaunay
//! paths from the flattened-paraboloid lower convex hull (Blelloch /
//! Kadow), recursive coarse partitioning, independent per-leaf
//! triangulation with the maintained-sort fast path, and the circumcenter
//! merge rule that reassembles the exact global Delaunay triangulation.

pub mod decompose;
pub mod subdomain;

pub use decompose::{
    decompose, triangulate_all, triangulate_dc_pooled, triangulate_leaf, triangulate_leaf_pooled,
    DecomposeParams, Decomposition,
};
pub use subdomain::{reduction_plan, Cut, CutAxis, ReductionNode, Side, Subdomain, Vertex};
