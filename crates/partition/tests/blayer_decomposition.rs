//! Figure 8: the boundary layer decomposed into independent Delaunay
//! subdomains whose union is the exact global Delaunay triangulation.

use adm_airfoil::naca0012_domain;
use adm_blayer::{build_boundary_layer, BlParams, Geometric};
use adm_delaunay::divconq::triangulate_dc;
use adm_geom::point::Point2;
use adm_partition::{decompose, triangulate_all, DecomposeParams, Subdomain};

fn canon(tris: &[[u32; 3]]) -> Vec<[u32; 3]> {
    let mut v: Vec<[u32; 3]> = tris
        .iter()
        .map(|t| {
            let mut s = *t;
            s.sort_unstable();
            s
        })
        .collect();
    v.sort();
    v
}

#[test]
fn boundary_layer_cloud_decomposes_into_128_subdomains() {
    let domain = naca0012_domain(80, 30.0);
    let growth = Geometric::new(5e-4, 1.25);
    let bl = build_boundary_layer(
        &domain.loops[0].points,
        &growth,
        &BlParams {
            height: 0.05,
            ..Default::default()
        },
    );
    let cloud = bl.all_points();
    assert!(cloud.len() > 2_000, "only {} points", cloud.len());

    let root = Subdomain::root(cloud);
    let d = decompose(root, &DecomposeParams::for_subdomain_count(128));
    assert!(
        d.leaves.len() >= 64 && d.leaves.len() <= 128,
        "got {} leaves",
        d.leaves.len()
    );

    // Independent triangulation + merge reproduces the exact global DT of
    // the anisotropic cloud.
    let merged = triangulate_all(&d.leaves);
    let dc = triangulate_dc(cloud, false);
    let direct: Vec<[u32; 3]> = dc
        .triangles()
        .iter()
        .map(|t| {
            [
                dc.input_index[t[0] as usize],
                dc.input_index[t[1] as usize],
                dc.input_index[t[2] as usize],
            ]
        })
        .collect();
    assert_eq!(canon(&merged), canon(&direct));
}

#[test]
fn subdomain_costs_are_balanced() {
    // The coarse partitioner should yield sub-domains whose cost estimates
    // are within a reasonable factor of each other for load balancing.
    let domain = naca0012_domain(60, 30.0);
    let growth = Geometric::new(1e-3, 1.3);
    let bl = build_boundary_layer(
        &domain.loops[0].points,
        &growth,
        &BlParams {
            height: 0.04,
            ..Default::default()
        },
    );
    let cloud = bl.all_points();
    let d = decompose(
        Subdomain::root(cloud),
        &DecomposeParams::for_subdomain_count(16),
    );
    let costs: Vec<u64> = d.leaves.iter().map(|l| l.cost()).collect();
    let max = *costs.iter().max().unwrap() as f64;
    let mean = costs.iter().sum::<u64>() as f64 / costs.len() as f64;
    // Median splits keep the imbalance bounded (path duplication adds a
    // fringe).
    assert!(
        max / mean < 2.5,
        "imbalance too high: max {max}, mean {mean:.1}"
    );
}

#[test]
fn dividing_paths_are_delaunay_edges() {
    // Every dividing-path edge must appear in the direct global DT — the
    // property that makes the decomposition non-intrusive (§II.D).
    let pts: Vec<Point2> = {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        (0..400)
            .map(|_| Point2::new(rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)))
            .collect()
    };
    let d = decompose(
        Subdomain::root(&pts),
        &DecomposeParams {
            min_vertices: 8,
            max_level: 1, // single split: paths vs the global DT
        },
    );
    let dc = triangulate_dc(&pts, false);
    let mut dt_edges = std::collections::HashSet::new();
    for t in dc.triangles() {
        for k in 0..3 {
            let (a, b) = (
                dc.input_index[t[k] as usize],
                dc.input_index[t[(k + 1) % 3] as usize],
            );
            dt_edges.insert(if a < b { (a, b) } else { (b, a) });
        }
    }
    for path in &d.paths {
        for w in path.windows(2) {
            let key = if w[0] < w[1] {
                (w[0], w[1])
            } else {
                (w[1], w[0])
            };
            assert!(
                dt_edges.contains(&key),
                "path edge {key:?} not in the global DT"
            );
        }
    }
}
