//! Boundary layers on real airfoil geometry — the qualitative cases of
//! the paper's Figures 2–5 and 13.

use adm_airfoil::{naca0012_domain, three_element_highlift, HighLiftParams};
use adm_blayer::{
    build_boundary_layer, build_multielement_layers, layers_disjoint, no_proper_intersections,
    BlParams, Geometric, RaySource,
};
use adm_geom::polygon::contains_point;

#[test]
fn naca0012_boundary_layer() {
    let domain = naca0012_domain(60, 30.0);
    let surf = &domain.loops[0].points;
    let growth = Geometric::new(2e-4, 1.25);
    let params = BlParams {
        height: 0.05,
        ..Default::default()
    };
    let bl = build_boundary_layer(surf, &growth, &params);

    // Figure 2: rays along surface normals at every vertex.
    assert!(bl.rays.len() >= surf.len());
    // Figure 4: the sharp trailing edge gets a fan of rays.
    let fans = bl
        .rays
        .iter()
        .filter(|r| matches!(r.source, RaySource::Fan(_)))
        .count();
    assert!(fans >= 5, "no trailing-edge fan ({fans} fan rays)");
    // No ray crosses another after resolution.
    assert!(no_proper_intersections(&bl.rays));
    // Anisotropy: first-layer spacing (2e-4) is far smaller than the
    // tangential spacing (surface discretization ~ 1e-2): aspect ratios of
    // order 100:1 near the wall.
    let stats = bl.stats();
    assert!(stats.points > 1_000, "only {} layer points", stats.points);
    assert!(stats.min_layers >= 1);
    // No layer point inside the airfoil solid.
    for &q in &bl.layer.points {
        assert!(!contains_point(surf, q), "point {q:?} inside the airfoil");
    }
    // Figure 5: smooth transition — neighboring rays' layer counts differ
    // by a bounded amount along the smooth surface.
    let n = bl.layer.num_rays();
    let mut max_jump = 0i64;
    for i in 0..n {
        let a = bl.layer.ray_points(i).len() as i64;
        let b = bl.layer.ray_points((i + 1) % n).len() as i64;
        max_jump = max_jump.max((a - b).abs());
    }
    assert!(max_jump <= 12, "layer-count jump {max_jump}");
}

#[test]
fn three_element_layers_resolve_all_intersections() {
    let pslg = three_element_highlift(&HighLiftParams::default());
    let surfaces: Vec<Vec<adm_geom::Point2>> =
        pslg.loops.iter().map(|l| l.points.clone()).collect();
    let growth = Geometric::new(2e-4, 1.3);
    let params = BlParams {
        height: 0.04,
        ..Default::default()
    };
    let layers = build_multielement_layers(&surfaces, &growth, &params);
    assert_eq!(layers.len(), 3);

    for (i, l) in layers.iter().enumerate() {
        // Figure 13b/c: self-intersections resolved (coves included).
        assert!(
            no_proper_intersections(&l.rays),
            "element {i} has crossing rays"
        );
        // Layer points stay out of their own solid.
        for &q in &l.layer.points {
            assert!(
                !contains_point(&surfaces[i], q),
                "element {i} point {q:?} inside solid"
            );
        }
    }
    // Figure 13d: multi-element intersections resolved — no element's
    // layer reaches inside another element's layer or solid.
    for i in 0..3 {
        for j in 0..3 {
            if i != j {
                assert!(
                    layers_disjoint(&layers[i], &layers[j]),
                    "layers {i} and {j} overlap"
                );
                for &q in &layers[i].layer.points {
                    assert!(
                        !contains_point(&surfaces[j], q),
                        "element {i} point inside element {j} solid"
                    );
                }
            }
        }
    }
    // The gap rays (slat TE toward main, main TE toward flap) were
    // clamped below the requested height.
    let clamped: usize = layers
        .iter()
        .map(|l| {
            l.rays
                .iter()
                .filter(|r| r.max_height < params.height - 1e-12)
                .count()
        })
        .sum();
    assert!(clamped > 0, "no multi-element clamping occurred");
}

#[test]
fn blunt_trailing_edge_gets_rays_on_both_corners() {
    // Figure 13e: the flap's blunt TE has two slope discontinuities; both
    // corners must fan.
    let pslg = three_element_highlift(&HighLiftParams::default());
    let flap = &pslg.loops[2].points;
    let growth = Geometric::new(2e-4, 1.3);
    let bl = build_boundary_layer(
        flap,
        &growth,
        &BlParams {
            height: 0.02,
            ..Default::default()
        },
    );
    let fan_sources: std::collections::HashSet<u32> = bl
        .rays
        .iter()
        .filter_map(|r| match r.source {
            RaySource::Fan(i) => Some(i),
            _ => None,
        })
        .collect();
    assert!(
        fan_sources.len() >= 2,
        "expected fans at both blunt-TE corners, got {fan_sources:?}"
    );
}
