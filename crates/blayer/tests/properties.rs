//! Property-based tests for the boundary-layer generator.

use adm_blayer::{
    build_boundary_layer, emit_rays, loop_normals, no_proper_intersections,
    resolve_self_intersections, BlParams, Capped, CornerThresholds, Geometric, GrowthFn,
    Polynomial,
};
use adm_geom::point::Point2;
use adm_geom::polygon::{contains_point, is_ccw, is_simple};
use proptest::prelude::*;

/// A random star-shaped (hence simple, CCW) polygon around the origin.
fn star_polygon() -> impl Strategy<Value = Vec<Point2>> {
    prop::collection::vec(0.5f64..2.0, 6..40).prop_map(|radii| {
        let n = radii.len();
        radii
            .iter()
            .enumerate()
            .map(|(k, &r)| {
                let th = k as f64 * std::f64::consts::TAU / n as f64;
                Point2::new(r * th.cos(), r * th.sin())
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Growth functions are strictly monotone and consistent with their
    /// per-layer thickness.
    #[test]
    fn growth_monotone(h0 in 1e-5f64..1e-2, ratio in 1.01f64..1.6, exp in 1.0f64..3.0) {
        let laws: Vec<Box<dyn GrowthFn>> = vec![
            Box::new(Geometric::new(h0, ratio)),
            Box::new(Polynomial::new(h0, exp)),
            Box::new(Capped { base: Geometric::new(h0, ratio), max_thickness: 10.0 * h0 }),
        ];
        for law in &laws {
            let mut acc = 0.0;
            for k in 1..40 {
                let t = law.layer_thickness(k);
                prop_assert!(t > 0.0);
                acc += t;
                prop_assert!((law.height(k) - acc).abs() < 1e-9 * acc.max(1e-30));
                prop_assert!(law.height(k) > law.height(k - 1));
            }
        }
    }

    /// Normals of a star polygon are unit length and point away from the
    /// origin (which the polygon surrounds).
    #[test]
    fn star_normals_point_outward(poly in star_polygon()) {
        prop_assume!(is_ccw(&poly) && is_simple(&poly));
        let normals = loop_normals(&poly);
        for (p, nv) in poly.iter().zip(&normals) {
            prop_assert!((nv.dir.norm() - 1.0).abs() < 1e-9);
            // Outwardness: positive radial component except possibly at
            // extreme reflex corners; star polygons keep it positive.
            let radial = (*p - Point2::ORIGIN).normalized().unwrap();
            prop_assert!(nv.dir.dot(radial) > -0.5, "normal folds inward");
        }
        // Total turning of a simple CCW loop is exactly 2 pi.
        let total: f64 = normals.iter().map(|nv| nv.turn).sum();
        prop_assert!((total - std::f64::consts::TAU).abs() < 1e-6);
    }

    /// Intersection resolution always reaches a crossing-free state and
    /// never lengthens a ray.
    #[test]
    fn resolution_fixpoint(poly in star_polygon(), height in 0.05f64..1.5) {
        prop_assume!(is_ccw(&poly) && is_simple(&poly));
        let mut rays = emit_rays(&poly, height, &CornerThresholds::default());
        let before: Vec<f64> = rays.iter().map(|r| r.max_height).collect();
        resolve_self_intersections(&mut rays);
        prop_assert!(no_proper_intersections(&rays));
        for (r, &b) in rays.iter().zip(&before) {
            prop_assert!(r.max_height <= b + 1e-15);
        }
    }

    /// The full boundary layer never places a point inside the solid and
    /// honors every ray clamp.
    #[test]
    fn layer_points_outside_solid(poly in star_polygon(), ratio in 1.1f64..1.4) {
        prop_assume!(is_ccw(&poly) && is_simple(&poly));
        let growth = Geometric::new(0.01, ratio);
        let bl = build_boundary_layer(&poly, &growth, &BlParams {
            height: 0.3,
            ..Default::default()
        });
        for &q in &bl.layer.points {
            prop_assert!(!contains_point(&poly, q) || on_boundary(&poly, q));
        }
        for (i, r) in bl.rays.iter().enumerate() {
            for &q in bl.layer.ray_points(i) {
                prop_assert!(q.distance(r.origin) < r.max_height + 1e-12);
            }
        }
    }
}

fn on_boundary(poly: &[Point2], p: Point2) -> bool {
    let n = poly.len();
    (0..n).any(|i| {
        adm_geom::segment::Segment::new(poly[i], poly[(i + 1) % n]).distance_to_point(p) < 1e-12
    })
}
