//! Hierarchical ray-intersection resolution (paper §II.B).
//!
//! Self-intersections (rays of the same element crossing in coves and
//! concavities) and multi-element intersections (rays of one element
//! reaching into another element's boundary layer) are resolved by
//! clamping ray heights. Candidates are pruned hierarchically, exactly as
//! the paper describes:
//!
//! 1. axis-aligned bounding box rejection with Cohen–Sutherland clipping;
//! 2. an **alternating digital tree** over segment extent boxes projected
//!    to 4-D points (`O(log n)` per query);
//! 3. exact computational-geometry segment tests for the survivors.

use crate::rays::Ray;
use adm_geom::aabb::Aabb;
use adm_geom::adt::Adt;
use adm_geom::point::Point2;
use adm_geom::segment::{SegIntersection, Segment};

/// Fraction of the distance to an intersection point that a clamped ray
/// keeps. Slightly below 1 so tips of mutually-clamped rays stay distinct.
const CLAMP_FRACTION: f64 = 0.95;

/// Resolves self-intersections among the rays of a single element by
/// iterated clamping: each pass builds an ADT of the current ray segments,
/// finds properly-intersecting pairs, and clamps both rays to just below
/// their crossing point. Clamping only shortens rays, so the iteration is
/// monotone; it stops at a fixpoint (or after 16 guard passes).
///
/// Returns the number of clamp operations performed.
pub fn resolve_self_intersections(rays: &mut [Ray]) -> usize {
    let mut total = 0usize;
    for _pass in 0..16 {
        let clamped = resolve_pass(rays);
        total += clamped;
        if clamped == 0 {
            break;
        }
    }
    total
}

fn resolve_pass(rays: &mut [Ray]) -> usize {
    if rays.len() < 2 {
        return 0;
    }
    let segs: Vec<Segment> = rays.iter().map(|r| r.segment()).collect();
    let mut domain = Aabb::empty();
    for s in &segs {
        domain.expand(s.a);
        domain.expand(s.b);
    }
    let mut adt = Adt::for_domain(&domain);
    for (i, s) in segs.iter().enumerate() {
        adt.insert_segment(s, i);
    }
    let mut clamps = 0usize;
    let mut candidates: Vec<usize> = Vec::new();
    let mut new_heights: Vec<f64> = rays.iter().map(|r| r.max_height).collect();
    for i in 0..rays.len() {
        candidates.clear();
        adt.query_segment(&segs[i], &mut candidates);
        for &j in &candidates {
            if j <= i {
                continue;
            }
            // Rays sharing an origin (fans) meet at the surface, not in
            // the layer; only *proper* interior crossings count.
            if rays[i].origin == rays[j].origin {
                continue;
            }
            // (xi, xj): clamp targets for rays i and j respectively.
            let hit: Option<(Point2, Point2)> = if segs[i].properly_intersects(&segs[j]) {
                match segs[i].intersection(&segs[j]) {
                    SegIntersection::Point(x) => Some((x, x)),
                    _ => None,
                }
            } else if rays[i].dir.dot(rays[j].dir) < 0.0 {
                // Exactly antiparallel rays (parallel cove walls) overlap
                // collinearly instead of crossing; clamp each at its
                // nearest overlap endpoint.
                match segs[i].intersection(&segs[j]) {
                    SegIntersection::Overlap(x, y) => {
                        if rays[i].origin.distance_sq(x) <= rays[i].origin.distance_sq(y) {
                            Some((x, y))
                        } else {
                            Some((y, x))
                        }
                    }
                    _ => None,
                }
            } else {
                None
            };
            if let Some((xi, xj)) = hit {
                let di = rays[i].origin.distance(xi) * CLAMP_FRACTION;
                let dj = rays[j].origin.distance(xj) * CLAMP_FRACTION;
                if di < new_heights[i] {
                    new_heights[i] = di;
                    clamps += 1;
                }
                if dj < new_heights[j] {
                    new_heights[j] = dj;
                    clamps += 1;
                }
            }
        }
    }
    for (r, &h) in rays.iter_mut().zip(&new_heights) {
        r.max_height = h;
    }
    clamps
}

/// `true` when no two rays properly intersect (brute force; for tests).
pub fn no_proper_intersections(rays: &[Ray]) -> bool {
    for i in 0..rays.len() {
        for j in (i + 1)..rays.len() {
            if rays[i].origin == rays[j].origin {
                continue;
            }
            if rays[i].segment().properly_intersects(&rays[j].segment()) {
                return false;
            }
        }
    }
    true
}

/// The outer border of an element's boundary layer as segments: the
/// closed polyline through the current ray tips. Used as the obstacle set
/// for multi-element intersection checks.
pub fn outer_border_segments(rays: &[Ray]) -> Vec<Segment> {
    let n = rays.len();
    (0..n)
        .map(|i| {
            let a = rays[i].at(rays[i].max_height);
            let b = rays[(i + 1) % n].at(rays[(i + 1) % n].max_height);
            Segment::new(a, b)
        })
        .collect()
}

/// Resolves intersections of element `a`'s rays with element `b`'s
/// boundary layer (paper §II.B): candidate rays are pruned by the AABB of
/// `b`'s layer via Cohen–Sutherland, then against an ADT of `b`'s
/// enclosing border segments (outer border + surface), and finally clamped
/// at exact intersection points.
///
/// Returns the number of rays clamped.
pub fn resolve_against_element(rays_a: &mut [Ray], rays_b: &[Ray], surface_b: &[Point2]) -> usize {
    if rays_a.is_empty() || rays_b.is_empty() {
        return 0;
    }
    // Obstacle set: b's outer boundary-layer border plus its surface.
    let mut obstacles = outer_border_segments(rays_b);
    let nb = surface_b.len();
    for i in 0..nb {
        obstacles.push(Segment::new(surface_b[i], surface_b[(i + 1) % nb]));
    }
    let mut bbox = Aabb::empty();
    for s in &obstacles {
        bbox.expand(s.a);
        bbox.expand(s.b);
    }
    // Level 1: Cohen–Sutherland AABB pruning of candidate rays.
    let candidates: Vec<usize> = (0..rays_a.len())
        .filter(|&i| bbox.intersects_segment(&rays_a[i].segment()))
        .collect();
    if candidates.is_empty() {
        return 0;
    }
    // Level 2: ADT over the obstacle extent boxes.
    let mut adt = Adt::for_domain(&bbox);
    for (k, s) in obstacles.iter().enumerate() {
        adt.insert_segment(s, k);
    }
    // Level 3: exact tests.
    let mut clamped = 0usize;
    let mut hits: Vec<usize> = Vec::new();
    for &i in &candidates {
        let seg = rays_a[i].segment();
        hits.clear();
        adt.query_segment(&seg, &mut hits);
        let mut min_h = rays_a[i].max_height;
        for &k in &hits {
            match seg.intersection(&obstacles[k]) {
                SegIntersection::Point(x) => {
                    let d = rays_a[i].origin.distance(x) * CLAMP_FRACTION;
                    min_h = min_h.min(d);
                }
                SegIntersection::Overlap(x, y) => {
                    let d = rays_a[i]
                        .origin
                        .distance(x)
                        .min(rays_a[i].origin.distance(y))
                        * CLAMP_FRACTION;
                    min_h = min_h.min(d);
                }
                SegIntersection::None => {}
            }
        }
        if min_h < rays_a[i].max_height {
            rays_a[i].max_height = min_h;
            clamped += 1;
        }
    }
    clamped
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normals::CornerThresholds;
    use crate::rays::{emit_rays, RaySource};
    use adm_geom::point::Vec2;

    fn p(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    fn ray(ox: f64, oy: f64, dx: f64, dy: f64, h: f64) -> Ray {
        Ray {
            origin: p(ox, oy),
            dir: Vec2::new(dx, dy).normalized().unwrap(),
            max_height: h,
            source: RaySource::Vertex(0),
        }
    }

    #[test]
    fn crossing_pair_is_clamped() {
        let mut rays = vec![
            ray(0.0, 0.0, 1.0, 1.0, 10.0),
            ray(2.0, 0.0, -1.0, 1.0, 10.0),
        ];
        let n = resolve_self_intersections(&mut rays);
        assert!(n >= 2);
        assert!(no_proper_intersections(&rays));
        // Crossing at (1,1), distance sqrt(2): clamped just below.
        assert!(rays[0].max_height < 2f64.sqrt());
        assert!(rays[0].max_height > 0.9 * 2f64.sqrt());
    }

    #[test]
    fn parallel_rays_untouched() {
        let mut rays = vec![ray(0.0, 0.0, 0.0, 1.0, 5.0), ray(1.0, 0.0, 0.0, 1.0, 5.0)];
        assert_eq!(resolve_self_intersections(&mut rays), 0);
        assert_eq!(rays[0].max_height, 5.0);
    }

    #[test]
    fn fan_rays_sharing_origin_are_exempt() {
        let mut rays = vec![ray(0.0, 0.0, 1.0, 0.1, 5.0), ray(0.0, 0.0, 1.0, -0.1, 5.0)];
        assert_eq!(resolve_self_intersections(&mut rays), 0);
    }

    #[test]
    fn concave_channel_rays_resolve() {
        // A V-channel: rays from both walls converge and must be clamped
        // so none cross.
        let mut rays = Vec::new();
        for k in 0..10 {
            let x = k as f64 * 0.1;
            rays.push(ray(x, x, 1.0, -1.0, 3.0)); // wall 1 normal
            rays.push(ray(x + 2.0, x, -1.0, -1.0, 3.0)); // wall 2 normal
        }
        let n = resolve_self_intersections(&mut rays);
        assert!(n > 0);
        assert!(no_proper_intersections(&rays));
    }

    #[test]
    fn cove_geometry_resolves() {
        // A solid with a narrow slot (a cove, the Fig 13b/c case): rays
        // from the slot's two facing walls converge and must be clamped.
        // The walls are subdivided and slightly skewed so rays cross
        // properly inside the slot.
        let mut slot = vec![p(0.0, 0.0), p(4.0, 0.0), p(4.0, 2.0)];
        // Right wall of the slot: from the top rim down (x ~ 2.2).
        for k in 0..=4 {
            slot.push(p(2.2 + 0.01 * k as f64, 2.0 - 0.4 * k as f64));
        }
        // Slot bottom and left wall back up (x ~ 1.8).
        for k in (0..=4).rev() {
            slot.push(p(1.8 - 0.01 * k as f64, 2.0 - 0.4 * k as f64));
        }
        slot.push(p(0.0, 2.0));
        assert!(adm_geom::polygon::is_ccw(&slot));
        assert!(adm_geom::polygon::is_simple(&slot));
        let mut rays = emit_rays(&slot, 0.8, &CornerThresholds::default());
        assert!(
            !no_proper_intersections(&rays),
            "test needs intersecting input"
        );
        resolve_self_intersections(&mut rays);
        assert!(no_proper_intersections(&rays));
        // Rays inside the slot were shortened below the slot width.
        assert!(rays.iter().any(|r| r.max_height < 0.5));
    }

    #[test]
    fn multielement_rays_clamped_at_neighbor_layer() {
        // Element A's rays point toward element B one unit away; B's
        // boundary layer (height 0.2) must stop A's rays.
        let square_b: Vec<Point2> = vec![p(2.0, -0.5), p(3.0, -0.5), p(3.0, 0.5), p(2.0, 0.5)];
        let rays_b = emit_rays(&square_b, 0.2, &CornerThresholds::default());
        let mut rays_a = vec![ray(0.0, 0.0, 1.0, 0.0, 5.0), ray(0.0, 0.3, 1.0, 0.0, 5.0)];
        let n = resolve_against_element(&mut rays_a, &rays_b, &square_b);
        assert!(n >= 1);
        // The horizontal ray at y=0 must stop before B's layer border at
        // x ~= 1.8.
        assert!(
            rays_a[0].max_height <= 1.9,
            "height {}",
            rays_a[0].max_height
        );
        assert!(rays_a[0].max_height > 1.0);
    }

    #[test]
    fn faraway_elements_untouched() {
        let square_b: Vec<Point2> = vec![p(20.0, -0.5), p(21.0, -0.5), p(21.0, 0.5), p(20.0, 0.5)];
        let rays_b = emit_rays(&square_b, 0.2, &CornerThresholds::default());
        let mut rays_a = vec![ray(0.0, 0.0, 0.0, 1.0, 2.0)];
        assert_eq!(resolve_against_element(&mut rays_a, &rays_b, &square_b), 0);
        assert_eq!(rays_a[0].max_height, 2.0);
    }

    #[test]
    fn clamping_is_monotone_and_idempotent() {
        let l = vec![
            p(0.0, 0.0),
            p(2.0, 0.0),
            p(2.0, 1.0),
            p(1.0, 1.0),
            p(1.0, 2.0),
            p(0.0, 2.0),
        ];
        let mut rays = emit_rays(&l, 0.8, &CornerThresholds::default());
        resolve_self_intersections(&mut rays);
        let snapshot: Vec<f64> = rays.iter().map(|r| r.max_height).collect();
        resolve_self_intersections(&mut rays);
        let after: Vec<f64> = rays.iter().map(|r| r.max_height).collect();
        assert_eq!(snapshot, after, "second resolution changed heights");
    }
}
