//! # adm-blayer — pseudo-structured anisotropic boundary layers
//!
//! Extrusion-based advancing-front boundary-layer generation (paper §II.A
//! to §II.C): growth functions, outward surface normals, ray emission with
//! large-angle refinement and trailing-edge cusp fans, hierarchical
//! intersection resolution (AABB → alternating digital tree → exact
//! tests), and growth-function point insertion with the isotropy stopping
//! rule that hands over to the unstructured inviscid region.

pub mod growth;
pub mod insert;
pub mod intersect;
pub mod normals;
pub mod rays;
pub mod region;

pub use growth::{Capped, Geometric, GrowthFn, GrowthSpec, Polynomial};
pub use insert::{insert_points, layer_stats, InsertParams, LayerPoints, LayerStats};
pub use intersect::{
    no_proper_intersections, outer_border_segments, resolve_against_element,
    resolve_self_intersections,
};
pub use normals::{edge_outward_normal, loop_normals, CornerThresholds, VertexNormal};
pub use rays::{emit_rays, max_consecutive_angle, Ray, RaySource};
pub use region::{
    build_boundary_layer, build_multielement_layers, layers_disjoint, BlParams, BoundaryLayer,
};
