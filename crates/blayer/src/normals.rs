//! Outward surface normals on a closed CCW surface loop.
//!
//! Each PSLG vertex becomes the origin of an extrusion ray whose direction
//! is the outward normal (paper §II.A, Figure 2). The vertex normal is the
//! angle bisector of the two adjacent edges' outward normals; vertices
//! whose adjacent edges turn sharply (trailing-edge cusps, cove corners)
//! are flagged so the refinement stage can emit ray fans there.

use adm_geom::point::{Point2, Vec2};

/// Normal information at one surface vertex.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VertexNormal {
    /// Unit outward normal (bisector of the adjacent edge normals).
    pub dir: Vec2,
    /// Exterior turning angle at the vertex, in radians. 0 for a straight
    /// surface, positive when the surface turns away from the fluid
    /// (convex corner, e.g. a sharp trailing edge), negative for a
    /// concavity (e.g. a cove corner).
    pub turn: f64,
}

/// Outward normal of the directed edge `a -> b` of a CCW loop (the fluid
/// is on the right of the traversal... no: for a CCW solid, the interior
/// is left of each edge, so the outward normal points right).
#[inline]
pub fn edge_outward_normal(a: Point2, b: Point2) -> Option<Vec2> {
    let d = (b - a).normalized()?;
    // Right of the direction = -perp.
    Some(-d.perp())
}

/// Computes per-vertex outward normals for a closed CCW loop.
///
/// Zero-length edges are skipped by falling back to the nearest distinct
/// neighbors. Panics if all points coincide.
pub fn loop_normals(points: &[Point2]) -> Vec<VertexNormal> {
    let n = points.len();
    assert!(n >= 3, "need a closed loop");
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let p = points[i];
        // Previous distinct point.
        let mut prev = None;
        for step in 1..n {
            let q = points[(i + n - step) % n];
            if q != p {
                prev = Some(q);
                break;
            }
        }
        let mut next = None;
        for step in 1..n {
            let q = points[(i + step) % n];
            if q != p {
                next = Some(q);
                break;
            }
        }
        let (prev, next) = (
            prev.expect("degenerate loop"),
            next.expect("degenerate loop"),
        );
        let n_in = edge_outward_normal(prev, p).expect("distinct points");
        let n_out = edge_outward_normal(p, next).expect("distinct points");
        // Bisector of the two edge normals; for a reversal (cusp) the sum
        // can vanish — fall back to the direction opposite the (nearly
        // parallel) edges.
        let dir = match (n_in + n_out).normalized() {
            Some(d) => d,
            None => {
                // Exact 180-degree cusp: the edge normals cancel. The
                // outward direction continues past the tip, along the
                // incoming edge direction.
                (p - prev).normalized().unwrap()
            }
        };
        // Exterior turn angle (standard for CCW polygons): positive at
        // convex solid corners, where neighboring rays diverge and fans may
        // be needed (trailing-edge cusps turn by nearly pi); negative at
        // concave corners (coves), where rays converge and self-intersect.
        let d_in = (p - prev).normalized().unwrap();
        let d_out = (next - p).normalized().unwrap();
        let turn = d_in.signed_angle_to(d_out);
        out.push(VertexNormal { dir, turn });
    }
    out
}

/// Classification thresholds for ray refinement (paper §II.B).
#[derive(Debug, Clone, Copy)]
pub struct CornerThresholds {
    /// |turn| above this marks a cusp (fan of rays from the same origin);
    /// the paper's trailing edges turn by nearly pi.
    pub cusp: f64,
    /// Maximum allowed angle between neighboring rays before new rays are
    /// interpolated between them.
    pub max_ray_angle: f64,
}

impl Default for CornerThresholds {
    fn default() -> Self {
        CornerThresholds {
            cusp: 60f64.to_radians(),
            max_ray_angle: 20f64.to_radians(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn p(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    #[test]
    fn edge_normal_points_outward_of_ccw_square() {
        // Bottom edge of a CCW square: outward is -y.
        let nrm = edge_outward_normal(p(0.0, 0.0), p(1.0, 0.0)).unwrap();
        assert!((nrm.x - 0.0).abs() < 1e-15);
        assert!((nrm.y + 1.0).abs() < 1e-15);
    }

    #[test]
    fn square_corner_normals_bisect() {
        let sq = vec![p(0.0, 0.0), p(1.0, 0.0), p(1.0, 1.0), p(0.0, 1.0)];
        let normals = loop_normals(&sq);
        // Corner (0,0): adjacent edge normals (0,-1) and (-1,0) — bisector
        // points down-left.
        let d = normals[0].dir;
        assert!((d.x + FRAC_PI_2.cos() / 1.0).abs() < 0.01 || d.x < 0.0);
        assert!(d.x < 0.0 && d.y < 0.0);
        assert!(((d.x.powi(2) + d.y.powi(2)).sqrt() - 1.0).abs() < 1e-12);
        // Convex corner: positive turn of 90 degrees.
        assert!((normals[0].turn - FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn straight_vertex_has_zero_turn() {
        let tri = vec![p(0.0, 0.0), p(1.0, 0.0), p(2.0, 0.0), p(1.0, 2.0)];
        let normals = loop_normals(&tri);
        assert!(normals[1].turn.abs() < 1e-12);
        // Normal of the straight bottom run points down.
        assert!((normals[1].dir.y + 1.0).abs() < 1e-12);
    }

    #[test]
    fn concave_corner_has_negative_turn() {
        // L-shape (CCW): the inner corner is concave.
        let l = vec![
            p(0.0, 0.0),
            p(2.0, 0.0),
            p(2.0, 1.0),
            p(1.0, 1.0),
            p(1.0, 2.0),
            p(0.0, 2.0),
        ];
        let normals = loop_normals(&l);
        // Vertex 3 = (1,1) is the reflex/concave corner of the solid seen
        // from outside.
        assert!(normals[3].turn < -1e-9, "turn {}", normals[3].turn);
        // All other corners are convex (positive turn).
        for (i, nv) in normals.iter().enumerate() {
            if i != 3 {
                assert!(nv.turn > 0.0, "corner {i}");
            }
        }
    }

    #[test]
    fn cusp_at_sharp_trailing_edge() {
        // A thin wedge: the TE vertex turns by nearly pi.
        let wedge = vec![p(1.0, 0.0), p(0.0, 0.02), p(-0.2, 0.0), p(0.0, -0.02)];
        let normals = loop_normals(&wedge);
        assert!(normals[0].turn > PI - 0.3, "TE turn {}", normals[0].turn);
        // Normal at the TE bisects outward along +x.
        assert!(normals[0].dir.x > 0.9);
    }

    #[test]
    fn duplicate_points_are_tolerated() {
        let sq = vec![
            p(0.0, 0.0),
            p(0.0, 0.0),
            p(1.0, 0.0),
            p(1.0, 1.0),
            p(0.0, 1.0),
        ];
        let normals = loop_normals(&sq);
        assert_eq!(normals.len(), 5);
        for nv in &normals {
            assert!((nv.dir.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn normals_point_away_from_interior() {
        // For a convex CCW polygon, each vertex normal must have positive
        // dot with (vertex - centroid).
        let hexa: Vec<Point2> = (0..6)
            .map(|k| {
                let th = k as f64 * PI / 3.0;
                p(th.cos(), th.sin())
            })
            .collect();
        let normals = loop_normals(&hexa);
        for (v, nv) in hexa.iter().zip(&normals) {
            assert!(nv.dir.dot(*v - Point2::ORIGIN) > 0.0);
        }
    }
}
