//! Boundary-layer growth functions (Garimella & Shephard).
//!
//! A growth function prescribes the wall-normal spacing of boundary-layer
//! points along each ray (paper §II.A): the first layer height captures the
//! viscous sublayer, and successive layers grow so the mesh coarsens away
//! from the wall. The paper names the two common choices — geometric and
//! polynomial — plus adaptive variants for complex geometries.

/// A wall-normal point-spacing law. `height(k)` is the cumulative distance
/// of the `k`-th layer from the surface, with `height(0) == 0` (the surface
/// itself).
pub trait GrowthFn {
    /// Cumulative offset of layer `k` from the surface.
    fn height(&self, k: usize) -> f64;

    /// Thickness of layer `k` (distance between layers `k-1` and `k`).
    fn layer_thickness(&self, k: usize) -> f64 {
        if k == 0 {
            0.0
        } else {
            self.height(k) - self.height(k - 1)
        }
    }

    /// Number of layers with height not exceeding `max_height`.
    fn layers_within(&self, max_height: f64) -> usize {
        let mut k = 0usize;
        while self.height(k + 1) <= max_height {
            k += 1;
            if k > 100_000 {
                break; // guard against non-growing laws
            }
        }
        k
    }
}

/// Geometric growth: layer thicknesses `h0, h0*r, h0*r^2, ...` — the CFD
/// workhorse (typically `r` in `[1.1, 1.3]`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geometric {
    /// First layer thickness.
    pub first_height: f64,
    /// Growth ratio (> 1 for growth).
    pub ratio: f64,
}

impl Geometric {
    /// Creates a geometric law; panics on non-positive height or ratio.
    pub fn new(first_height: f64, ratio: f64) -> Self {
        assert!(first_height > 0.0, "first height must be positive");
        assert!(ratio > 0.0, "ratio must be positive");
        Geometric {
            first_height,
            ratio,
        }
    }
}

impl GrowthFn for Geometric {
    fn height(&self, k: usize) -> f64 {
        if k == 0 {
            return 0.0;
        }
        let r = self.ratio;
        if (r - 1.0).abs() < 1e-14 {
            self.first_height * k as f64
        } else {
            self.first_height * (r.powi(k as i32) - 1.0) / (r - 1.0)
        }
    }

    fn layer_thickness(&self, k: usize) -> f64 {
        if k == 0 {
            0.0
        } else {
            self.first_height * self.ratio.powi(k as i32 - 1)
        }
    }
}

/// Polynomial growth: cumulative height `h0 * k^p` (p = 1 is uniform
/// spacing, p = 2 quadratic, ...).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Polynomial {
    /// Height scale.
    pub first_height: f64,
    /// Exponent (>= 1).
    pub exponent: f64,
}

impl Polynomial {
    /// Creates a polynomial law; panics on non-positive parameters.
    pub fn new(first_height: f64, exponent: f64) -> Self {
        assert!(first_height > 0.0);
        assert!(exponent >= 1.0);
        Polynomial {
            first_height,
            exponent,
        }
    }
}

impl GrowthFn for Polynomial {
    fn height(&self, k: usize) -> f64 {
        self.first_height * (k as f64).powf(self.exponent)
    }
}

/// Adaptive growth: a base law whose thicknesses are capped at
/// `max_thickness` — Garimella & Shephard's adaptation for regions where
/// unconstrained growth would overshoot local feature size.
#[derive(Debug, Clone)]
pub struct Capped<G: GrowthFn> {
    /// The underlying law.
    pub base: G,
    /// Maximum layer thickness.
    pub max_thickness: f64,
}

impl<G: GrowthFn> GrowthFn for Capped<G> {
    fn height(&self, k: usize) -> f64 {
        let mut h = 0.0;
        for i in 1..=k {
            h += self.base.layer_thickness(i).min(self.max_thickness);
        }
        h
    }

    fn layer_thickness(&self, k: usize) -> f64 {
        if k == 0 {
            0.0
        } else {
            self.base.layer_thickness(k).min(self.max_thickness)
        }
    }
}

/// A configuration-friendly growth-law selector covering the
/// Garimella–Shephard family the paper cites: plain geometric, polynomial,
/// and thickness-capped geometric (the "adaptive" variant for complex
/// geometries).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GrowthSpec {
    /// Geometric layers `h0 * r^k`.
    Geometric {
        /// First layer thickness.
        first_height: f64,
        /// Growth ratio.
        ratio: f64,
    },
    /// Cumulative height `h0 * k^p`.
    Polynomial {
        /// Height scale.
        first_height: f64,
        /// Exponent (>= 1).
        exponent: f64,
    },
    /// Geometric with a thickness ceiling.
    CappedGeometric {
        /// First layer thickness.
        first_height: f64,
        /// Growth ratio.
        ratio: f64,
        /// Maximum layer thickness.
        max_thickness: f64,
    },
}

impl GrowthSpec {
    /// First-layer thickness of the law (used for sizing calibration).
    pub fn first_height(&self) -> f64 {
        match *self {
            GrowthSpec::Geometric { first_height, .. }
            | GrowthSpec::Polynomial { first_height, .. }
            | GrowthSpec::CappedGeometric { first_height, .. } => first_height,
        }
    }
}

impl GrowthFn for GrowthSpec {
    fn height(&self, k: usize) -> f64 {
        match *self {
            GrowthSpec::Geometric {
                first_height,
                ratio,
            } => Geometric::new(first_height, ratio).height(k),
            GrowthSpec::Polynomial {
                first_height,
                exponent,
            } => Polynomial::new(first_height, exponent).height(k),
            GrowthSpec::CappedGeometric {
                first_height,
                ratio,
                max_thickness,
            } => Capped {
                base: Geometric::new(first_height, ratio),
                max_thickness,
            }
            .height(k),
        }
    }

    fn layer_thickness(&self, k: usize) -> f64 {
        match *self {
            GrowthSpec::Geometric {
                first_height,
                ratio,
            } => Geometric::new(first_height, ratio).layer_thickness(k),
            GrowthSpec::Polynomial {
                first_height,
                exponent,
            } => Polynomial::new(first_height, exponent).layer_thickness(k),
            GrowthSpec::CappedGeometric {
                first_height,
                ratio,
                max_thickness,
            } => Capped {
                base: Geometric::new(first_height, ratio),
                max_thickness,
            }
            .layer_thickness(k),
        }
    }
}

impl From<Geometric> for GrowthSpec {
    fn from(g: Geometric) -> Self {
        GrowthSpec::Geometric {
            first_height: g.first_height,
            ratio: g.ratio,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_heights() {
        let g = Geometric::new(1.0, 2.0);
        assert_eq!(g.height(0), 0.0);
        assert_eq!(g.height(1), 1.0);
        assert_eq!(g.height(2), 3.0);
        assert_eq!(g.height(3), 7.0);
        assert_eq!(g.layer_thickness(3), 4.0);
    }

    #[test]
    fn geometric_ratio_one_is_uniform() {
        let g = Geometric::new(0.5, 1.0);
        assert_eq!(g.height(4), 2.0);
        assert_eq!(g.layer_thickness(4), 0.5);
    }

    #[test]
    fn geometric_typical_cfd_values() {
        // 1e-5 first height, 1.2 ratio: ~ 48 layers to reach 1% chord... a
        // sanity check that the closed form matches the sum.
        let g = Geometric::new(1e-5, 1.2);
        let mut acc = 0.0;
        for k in 1..=30 {
            acc += g.layer_thickness(k);
            assert!((g.height(k) - acc).abs() < 1e-15, "k={k}");
        }
    }

    #[test]
    fn polynomial_heights() {
        let p = Polynomial::new(0.1, 1.0);
        assert_eq!(p.height(5), 0.5);
        let q = Polynomial::new(0.1, 2.0);
        assert!((q.height(3) - 0.9).abs() < 1e-12);
        assert!((q.layer_thickness(3) - (0.9 - 0.4)).abs() < 1e-12);
    }

    #[test]
    fn layers_within_bounds() {
        let g = Geometric::new(1.0, 2.0);
        assert_eq!(g.layers_within(0.5), 0);
        assert_eq!(g.layers_within(1.0), 1);
        assert_eq!(g.layers_within(6.9), 2);
        assert_eq!(g.layers_within(7.0), 3);
    }

    #[test]
    fn capped_growth_limits_thickness() {
        let c = Capped {
            base: Geometric::new(1.0, 2.0),
            max_thickness: 2.5,
        };
        assert_eq!(c.layer_thickness(1), 1.0);
        assert_eq!(c.layer_thickness(2), 2.0);
        assert_eq!(c.layer_thickness(3), 2.5); // capped from 4
        assert_eq!(c.height(3), 5.5);
    }

    #[test]
    fn monotonicity() {
        let laws: Vec<Box<dyn GrowthFn>> = vec![
            Box::new(Geometric::new(1e-4, 1.15)),
            Box::new(Polynomial::new(1e-3, 1.5)),
        ];
        for law in &laws {
            for k in 0..50 {
                assert!(law.height(k + 1) > law.height(k));
            }
        }
    }
}
