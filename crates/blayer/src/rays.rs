//! Extrusion rays: emission, large-angle refinement, and cusp fans.
//!
//! Every surface vertex emits a ray along its outward normal (paper §II.A).
//! Where neighboring rays diverge too much — smooth high-curvature regions
//! like a leading edge — new origins are interpolated *between* vertices
//! with linearly interpolated normals (§II.B). At slope discontinuities
//! (trailing-edge cusps, Figure 4) a **fan** of rays is emitted from the
//! single cusp vertex, sweeping from the incoming edge's normal to the
//! outgoing edge's normal.

use crate::normals::{edge_outward_normal, loop_normals, CornerThresholds};
use adm_geom::point::{Point2, Vec2};
use adm_geom::segment::Segment;

/// Where a ray came from (diagnostics and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaySource {
    /// Emitted from surface vertex `i` along its bisector normal.
    Vertex(u32),
    /// Interpolated between vertices `i` and `i+1` (large-angle refinement).
    Interpolated(u32),
    /// Part of the fan at cusp vertex `i`.
    Fan(u32),
}

/// One extrusion ray.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ray {
    /// Origin on the surface.
    pub origin: Point2,
    /// Unit outward direction.
    pub dir: Vec2,
    /// Current height clamp: points are inserted strictly below this
    /// distance from the origin. Starts at the requested boundary-layer
    /// height and is reduced by intersection resolution.
    pub max_height: f64,
    /// Provenance.
    pub source: RaySource,
}

impl Ray {
    /// The ray as a segment from its origin to its current tip.
    #[inline]
    pub fn segment(&self) -> Segment {
        Segment::new(self.origin, self.origin + self.dir * self.max_height)
    }

    /// Point at distance `h` along the ray.
    #[inline]
    pub fn at(&self, h: f64) -> Point2 {
        self.origin + self.dir * h
    }
}

/// Emits the refined ray set for a closed CCW surface loop.
///
/// `height` is the requested boundary-layer thickness (all rays start with
/// `max_height == height`). The returned rays are in surface order
/// (counter-clockwise), which downstream stages rely on for neighbor
/// lookups.
pub fn emit_rays(points: &[Point2], height: f64, th: &CornerThresholds) -> Vec<Ray> {
    assert!(height > 0.0);
    let n = points.len();
    let normals = loop_normals(points);
    let mut rays: Vec<Ray> = Vec::with_capacity(2 * n);

    // Per-vertex emission: fan at cusps, single bisector ray elsewhere.
    // `vertex_span[i]` records the (first, last) ray index emitted at
    // vertex i so the gap pass can look at the facing directions.
    let mut vertex_span: Vec<(usize, usize)> = Vec::with_capacity(n);
    for i in 0..n {
        let p = points[i];
        let nv = normals[i];
        let first = rays.len();
        if nv.turn > th.cusp {
            // Fan from the incoming edge's outward normal to the outgoing
            // edge's outward normal (Figure 4's "fan of curved rays").
            let prev = points[(i + n - 1) % n];
            let next = points[(i + 1) % n];
            let n_in = edge_outward_normal(prev, p);
            let n_out = edge_outward_normal(p, next);
            match (n_in, n_out) {
                (Some(a), Some(b)) => {
                    let m = (nv.turn / th.max_ray_angle).ceil().max(2.0) as usize;
                    for j in 0..=m {
                        let t = j as f64 / m as f64;
                        let dir = a.slerp_dir(b, t).unwrap_or(nv.dir);
                        rays.push(Ray {
                            origin: p,
                            dir,
                            max_height: height,
                            source: RaySource::Fan(i as u32),
                        });
                    }
                }
                _ => rays.push(Ray {
                    origin: p,
                    dir: nv.dir,
                    max_height: height,
                    source: RaySource::Vertex(i as u32),
                }),
            }
        } else {
            rays.push(Ray {
                origin: p,
                dir: nv.dir,
                max_height: height,
                source: RaySource::Vertex(i as u32),
            });
        }
        vertex_span.push((first, rays.len() - 1));
    }

    // Gap refinement between consecutive vertices: if the facing rays
    // diverge by more than the threshold, interpolate new origins along
    // the surface edge with slerp'd directions.
    let mut out: Vec<Ray> = Vec::with_capacity(rays.len() * 2);
    for i in 0..n {
        let (first_i, last_i) = vertex_span[i];
        let (first_j, _) = vertex_span[(i + 1) % n];
        // Emit vertex i's rays.
        out.extend_from_slice(&rays[first_i..=last_i]);
        let a = rays[last_i];
        let b = rays[first_j];
        if a.origin == b.origin {
            continue;
        }
        let angle = a.dir.angle_between(b.dir);
        if angle > th.max_ray_angle {
            let k = (angle / th.max_ray_angle).ceil() as usize - 1;
            for j in 1..=k {
                let t = j as f64 / (k + 1) as f64;
                let origin = a.origin.lerp(b.origin, t);
                let dir = a.dir.slerp_dir(b.dir, t).unwrap_or(a.dir);
                out.push(Ray {
                    origin,
                    dir,
                    max_height: height,
                    source: RaySource::Interpolated(i as u32),
                });
            }
        }
    }
    out
}

/// Maximum angle between consecutive rays in the list (diagnostics: the
/// refinement stage must bring this below the threshold for non-cusp
/// pairs).
pub fn max_consecutive_angle(rays: &[Ray]) -> f64 {
    let n = rays.len();
    (0..n)
        .map(|i| rays[i].dir.angle_between(rays[(i + 1) % n].dir))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adm_geom::polygon::contains_point;
    use std::f64::consts::PI;

    fn p(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    fn circle(n: usize, r: f64) -> Vec<Point2> {
        (0..n)
            .map(|k| {
                let th = k as f64 * std::f64::consts::TAU / n as f64;
                p(r * th.cos(), r * th.sin())
            })
            .collect()
    }

    #[test]
    fn one_ray_per_vertex_on_smooth_loop() {
        // A fine circle has small inter-ray angles: no refinement needed.
        let c = circle(72, 1.0);
        let rays = emit_rays(&c, 0.1, &CornerThresholds::default());
        assert_eq!(rays.len(), 72);
        assert!(rays
            .iter()
            .all(|r| matches!(r.source, RaySource::Vertex(_))));
        // All rays point radially outward.
        for r in &rays {
            let radial = (r.origin - Point2::ORIGIN).normalized().unwrap();
            assert!(r.dir.dot(radial) > 0.999);
        }
    }

    #[test]
    fn coarse_circle_gets_interpolated_rays() {
        // 8 vertices -> 45-degree steps > 20-degree threshold.
        let c = circle(8, 1.0);
        let rays = emit_rays(&c, 0.1, &CornerThresholds::default());
        assert!(rays.len() > 8, "got {} rays", rays.len());
        assert!(rays
            .iter()
            .any(|r| matches!(r.source, RaySource::Interpolated(_))));
        // After refinement no consecutive pair diverges beyond threshold.
        assert!(max_consecutive_angle(&rays) <= 20.01f64.to_radians());
    }

    #[test]
    fn square_corners_get_fans() {
        let sq = vec![p(0.0, 0.0), p(1.0, 0.0), p(1.0, 1.0), p(0.0, 1.0)];
        let rays = emit_rays(&sq, 0.2, &CornerThresholds::default());
        // 90-degree corners exceed the 60-degree cusp threshold: each
        // corner fans out.
        let fan_count = rays
            .iter()
            .filter(|r| matches!(r.source, RaySource::Fan(_)))
            .count();
        assert!(fan_count >= 4 * 3, "fans: {fan_count}");
        // Fan rays at a corner share the origin.
        let corner_rays: Vec<&Ray> = rays
            .iter()
            .filter(|r| r.source == RaySource::Fan(0))
            .collect();
        assert!(corner_rays.len() >= 3);
        assert!(corner_rays.iter().all(|r| r.origin == sq[0]));
        // The fan sweeps from (0,-1)-ish to (-1,0)-ish: wait, corner 0 of
        // the CCW square has incoming edge from (0,1) and outgoing to
        // (1,0): normals (-1,0) -> (0,-1).
        let first = corner_rays.first().unwrap();
        let last = corner_rays.last().unwrap();
        assert!(first.dir.x < -0.9, "first {first:?}");
        assert!(last.dir.y < -0.9, "last {last:?}");
    }

    #[test]
    fn trailing_edge_cusp_fan_covers_the_wake() {
        // Thin wedge: TE at (1,0) turns by ~pi.
        let wedge = vec![p(1.0, 0.0), p(0.0, 0.05), p(-0.3, 0.0), p(0.0, -0.05)];
        let th = CornerThresholds::default();
        let rays = emit_rays(&wedge, 0.1, &th);
        let fan: Vec<&Ray> = rays
            .iter()
            .filter(|r| r.source == RaySource::Fan(0))
            .collect();
        // turn ~ pi - wedge half-angles => at least pi/20deg = 9 rays.
        assert!(fan.len() >= 8, "fan size {}", fan.len());
        // Some fan ray points close to +x (into the wake); the fan steps
        // are ~18 degrees, so allow one half-step of slack.
        assert!(fan.iter().any(|r| r.dir.x > 0.97), "no wake-aligned ray");
        // The sweep runs from the lower-surface normal (down) to the
        // upper-surface normal (up).
        assert!(fan.first().unwrap().dir.y < -0.5);
        assert!(fan.last().unwrap().dir.y > 0.5);
    }

    #[test]
    fn rays_never_point_into_the_solid() {
        let c = circle(16, 2.0);
        let rays = emit_rays(&c, 0.5, &CornerThresholds::default());
        for r in &rays {
            // A short step along the ray must leave the polygon.
            let probe = r.at(1e-6);
            assert!(
                !contains_point(&c, probe) || {
                    // Boundary tolerance: probe exactly on edge counts as
                    // inside; step further.
                    !contains_point(&c, r.at(1e-3))
                },
                "ray {r:?} points inward"
            );
        }
    }

    #[test]
    fn ray_order_follows_surface_order() {
        let c = circle(12, 1.0);
        let rays = emit_rays(&c, 0.1, &CornerThresholds::default());
        // Origins must appear in CCW angular order.
        let mut prev = (rays[0].origin - Point2::ORIGIN).angle();
        let mut wraps = 0;
        for r in rays.iter().skip(1) {
            let a = (r.origin - Point2::ORIGIN).angle();
            if a < prev {
                wraps += 1;
            }
            prev = a;
        }
        assert!(wraps <= 1, "origins out of order");
    }

    #[test]
    fn concave_corner_gets_no_fan() {
        // L-shape: the concave corner (negative turn) must not fan.
        let l = vec![
            p(0.0, 0.0),
            p(2.0, 0.0),
            p(2.0, 1.0),
            p(1.0, 1.0),
            p(1.0, 2.0),
            p(0.0, 2.0),
        ];
        let rays = emit_rays(&l, 0.1, &CornerThresholds::default());
        assert!(!rays.iter().any(|r| r.source == RaySource::Fan(3)));
    }

    #[test]
    fn fan_angles_are_bounded() {
        let sq = vec![p(0.0, 0.0), p(1.0, 0.0), p(1.0, 1.0), p(0.0, 1.0)];
        let th = CornerThresholds {
            max_ray_angle: 10f64.to_radians(),
            ..Default::default()
        };
        let rays = emit_rays(&sq, 0.2, &th);
        assert!(max_consecutive_angle(&rays) <= 10.01f64.to_radians());
        let _ = PI;
    }
}
