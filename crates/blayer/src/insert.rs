//! Boundary-layer point insertion along rays (paper §II.C).
//!
//! Each process inserts points along its rays according to the growth
//! function, stopping at the ray's intersection clamp or when the local
//! triangles would become isotropic — the layer thickness catches up with
//! the tangential spacing to the neighboring rays — providing the smooth
//! transition into the unstructured inviscid region (Figure 5).

use crate::growth::GrowthFn;
use crate::rays::Ray;
use adm_geom::point::Point2;

/// Controls for point insertion.
#[derive(Debug, Clone, Copy)]
pub struct InsertParams {
    /// Stop when the next layer thickness exceeds `iso_factor` times the
    /// local tangential spacing (1.0 = stop at unit aspect ratio).
    pub iso_factor: f64,
    /// Hard cap on layers per ray (safety).
    pub max_layers: usize,
}

impl Default for InsertParams {
    fn default() -> Self {
        InsertParams {
            iso_factor: 1.0,
            max_layers: 10_000,
        }
    }
}

/// Per-ray insertion result, stored contiguously (paper §III: coordinates
/// are communicated as a flat array because the structured ordering is
/// implicitly known).
#[derive(Debug, Clone, Default)]
pub struct LayerPoints {
    /// All inserted points, ray-major (ray 0's points, then ray 1's, ...).
    /// Ray origins (surface points) are **not** included.
    pub points: Vec<Point2>,
    /// CSR offsets: points of ray `i` live in
    /// `points[offsets[i]..offsets[i+1]]`.
    pub offsets: Vec<usize>,
}

impl LayerPoints {
    /// Points of ray `i`.
    pub fn ray_points(&self, i: usize) -> &[Point2] {
        &self.points[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Number of rays.
    pub fn num_rays(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Tip of ray `i`: its outermost inserted point, or `None` if the ray
    /// received no points.
    pub fn tip(&self, i: usize) -> Option<Point2> {
        self.ray_points(i).last().copied()
    }
}

/// Inserts points along every ray. Rays must be in surface order (the
/// isotropy test uses the neighbors at each height).
pub fn insert_points<G: GrowthFn>(rays: &[Ray], growth: &G, params: &InsertParams) -> LayerPoints {
    let n = rays.len();
    let mut out = LayerPoints {
        points: Vec::with_capacity(4 * n),
        offsets: Vec::with_capacity(n + 1),
    };
    out.offsets.push(0);
    for i in 0..n {
        let r = &rays[i];
        let prev = &rays[(i + n - 1) % n];
        let next = &rays[(i + 1) % n];
        // Fan rays share their origin with a neighbor, so their tangential
        // spacing near the wall is below the first layer thickness; the
        // isotropy stop does not apply to them — fans fill the wake up to
        // their height clamp (Figure 4).
        let s1 = local_spacing(r, prev, next, growth.height(1));
        let fan_like = s1 <= params.iso_factor * growth.layer_thickness(1);
        for k in 1..=params.max_layers {
            let h = growth.height(k);
            if h >= r.max_height {
                break;
            }
            // Isotropy stop: when the layer thickness reaches the local
            // tangential spacing, the anisotropic layer hands over to the
            // isotropic region (Figure 5).
            if !fan_like {
                let spacing = local_spacing(r, prev, next, h);
                if growth.layer_thickness(k) >= params.iso_factor * spacing {
                    break;
                }
            }
            out.points.push(r.at(h));
        }
        out.offsets.push(out.points.len());
    }
    out
}

/// Tangential spacing at height `h`: the smaller of the distances to the
/// two neighboring rays' points at the same height (clamped to their own
/// reach so converging rays don't report zero).
fn local_spacing(r: &Ray, prev: &Ray, next: &Ray, h: f64) -> f64 {
    let p = r.at(h);
    let dp = p.distance(prev.at(h.min(prev.max_height)));
    let dn = p.distance(next.at(h.min(next.max_height)));
    dp.min(dn).max(f64::MIN_POSITIVE)
}

/// Smooths realized tip heights to a Lipschitz profile along the surface
/// and writes the result back as ray height clamps — the mechanism behind
/// Figure 5's "different heights ... to provide a smooth transition".
///
/// Between neighboring rays `i, j` the allowed height satisfies
/// `h_i <= h_j * (1 + l_ang * dtheta) + l_dist * d`, where `d` is the
/// distance between origins and `dtheta` the angle between ray directions.
/// The multiplicative angular term lets cusp fans grow gradually away
/// from their (short) flanking rays while still suppressing the radial
/// cliffs that cascade Ruppert splits on the outer border.
pub fn smooth_heights(rays: &mut [Ray], realized: &LayerPoints, l_dist: f64, l_ang: f64) {
    let n = rays.len();
    if n < 3 {
        return;
    }
    let mut h: Vec<f64> = (0..n)
        .map(|i| {
            realized
                .tip(i)
                .map(|p| p.distance(rays[i].origin))
                .unwrap_or(0.0)
                .min(rays[i].max_height)
        })
        .collect();
    // Monotone relaxation: sweep until no height decreases (bounded by n
    // sweeps; each pass propagates constraints one step around the loop).
    for _ in 0..n {
        let mut changed = false;
        for i in 0..n {
            for j in [(i + 1) % n, (i + n - 1) % n] {
                let d = rays[i].origin.distance(rays[j].origin);
                let dtheta = rays[i].dir.angle_between(rays[j].dir);
                let allow = h[j] * (1.0 + l_ang * dtheta) + l_dist * d;
                if h[i] > allow {
                    h[i] = allow;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    for (r, &hi) in rays.iter_mut().zip(&h) {
        if hi > 0.0 {
            r.max_height = r.max_height.min(hi * 1.0000001);
        }
    }
}

/// Summary statistics of a boundary layer (for EXPERIMENTS.md reporting).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LayerStats {
    /// Total points inserted (excluding surface vertices).
    pub points: usize,
    /// Minimum / maximum layers on any ray.
    pub min_layers: usize,
    pub max_layers: usize,
    /// Mean layers per ray.
    pub mean_layers: f64,
}

/// Computes summary statistics.
pub fn layer_stats(lp: &LayerPoints) -> LayerStats {
    let n = lp.num_rays();
    if n == 0 {
        return LayerStats::default();
    }
    let mut min_l = usize::MAX;
    let mut max_l = 0usize;
    let mut total = 0usize;
    for i in 0..n {
        let c = lp.ray_points(i).len();
        min_l = min_l.min(c);
        max_l = max_l.max(c);
        total += c;
    }
    LayerStats {
        points: total,
        min_layers: min_l,
        max_layers: max_l,
        mean_layers: total as f64 / n as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::growth::Geometric;
    use crate::normals::CornerThresholds;
    use crate::rays::emit_rays;

    fn p(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    fn circle(n: usize, r: f64) -> Vec<Point2> {
        (0..n)
            .map(|k| {
                let th = k as f64 * std::f64::consts::TAU / n as f64;
                p(r * th.cos(), r * th.sin())
            })
            .collect()
    }

    #[test]
    fn points_follow_growth_function() {
        let c = circle(64, 1.0);
        let rays = emit_rays(&c, 0.5, &CornerThresholds::default());
        let g = Geometric::new(0.01, 1.3);
        let lp = insert_points(&rays, &g, &InsertParams::default());
        assert_eq!(lp.num_rays(), rays.len());
        let pts = lp.ray_points(0);
        assert!(!pts.is_empty());
        // First point at first height from the surface.
        let d0 = pts[0].distance(rays[0].origin);
        assert!((d0 - 0.01).abs() < 1e-12);
        // Consecutive spacings grow by the ratio.
        if pts.len() >= 3 {
            let d1 = pts[1].distance(pts[0]);
            let d2 = pts[2].distance(pts[1]);
            assert!((d2 / d1 - 1.3).abs() < 1e-9);
        }
    }

    #[test]
    fn isotropy_stops_growth() {
        // Coarse circle: tangential spacing ~ 2*pi/16 ~ 0.4 at the wall.
        // With small first height the layers stop roughly when thickness
        // reaches spacing.
        let c = circle(16, 1.0);
        let rays = emit_rays(&c, f64::INFINITY, &CornerThresholds::default());
        let g = Geometric::new(0.01, 1.4);
        let lp = insert_points(&rays, &g, &InsertParams::default());
        let stats = layer_stats(&lp);
        assert!(stats.max_layers < 50, "unbounded growth: {stats:?}");
        assert!(stats.min_layers >= 3);
        // The final layer thickness is near the local spacing.
        let pts = lp.ray_points(0);
        let last_thick = pts[pts.len() - 1].distance(pts[pts.len() - 2]);
        assert!(last_thick < 1.0);
    }

    #[test]
    fn clamped_ray_gets_fewer_points() {
        let c = circle(64, 1.0);
        let mut rays = emit_rays(&c, 0.5, &CornerThresholds::default());
        rays[0].max_height = 0.05;
        let g = Geometric::new(0.01, 1.2);
        let lp = insert_points(&rays, &g, &InsertParams::default());
        assert!(lp.ray_points(0).len() < lp.ray_points(5).len());
        // No point exceeds the clamp.
        for q in lp.ray_points(0) {
            assert!(q.distance(rays[0].origin) < 0.05);
        }
    }

    #[test]
    fn smooth_transition_heights_vary_gradually() {
        // Figure 5's "different heights for a smooth transition": layer
        // counts of neighboring rays differ by a bounded amount on smooth
        // geometry.
        let c = circle(128, 1.0);
        let rays = emit_rays(&c, 0.4, &CornerThresholds::default());
        let g = Geometric::new(0.002, 1.25);
        let lp = insert_points(&rays, &g, &InsertParams::default());
        for i in 0..lp.num_rays() {
            let a = lp.ray_points(i).len() as i64;
            let b = lp.ray_points((i + 1) % lp.num_rays()).len() as i64;
            assert!((a - b).abs() <= 2, "jump at ray {i}: {a} vs {b}");
        }
    }

    #[test]
    fn stats_are_consistent() {
        let c = circle(32, 1.0);
        let rays = emit_rays(&c, 0.3, &CornerThresholds::default());
        let g = Geometric::new(0.01, 1.3);
        let lp = insert_points(&rays, &g, &InsertParams::default());
        let stats = layer_stats(&lp);
        assert_eq!(stats.points, lp.points.len());
        assert!(stats.min_layers <= stats.max_layers);
        assert!(stats.mean_layers >= stats.min_layers as f64);
        assert!(stats.mean_layers <= stats.max_layers as f64);
    }
}
