//! Boundary-layer assembly for whole configurations.
//!
//! Ties the stages together per element — normals → rays → refinement →
//! intersection resolution → point insertion — and produces the artifacts
//! the rest of the pipeline needs: the anisotropic point cloud for parallel
//! triangulation (§II.D) and the outer border that becomes the inviscid
//! region's inner boundary (§II.E).

use crate::growth::GrowthFn;
use crate::insert::{insert_points, layer_stats, InsertParams, LayerPoints, LayerStats};
use crate::intersect::{resolve_against_element, resolve_self_intersections};
use crate::normals::CornerThresholds;
use crate::rays::{emit_rays, Ray};
use adm_geom::point::Point2;
use adm_geom::segment::Segment;

/// Configuration for boundary-layer generation.
#[derive(Debug, Clone, Copy)]
pub struct BlParams {
    /// Requested layer height (clamps may reduce it locally).
    pub height: f64,
    /// Corner/fan thresholds.
    pub corners: CornerThresholds,
    /// Point-insertion controls.
    pub insert: InsertParams,
}

impl Default for BlParams {
    fn default() -> Self {
        BlParams {
            height: 0.1,
            corners: CornerThresholds::default(),
            insert: InsertParams::default(),
        }
    }
}

/// The generated boundary layer of one element.
///
/// The point cloud and outer border are computed once at construction and
/// served as slices: the pipeline queries them per layer per phase
/// (decomposition, region refinement, final constraint pass), and
/// rebuilding a fresh `Vec` on every call dominated those loops.
#[derive(Debug, Clone)]
pub struct BoundaryLayer {
    /// Refined, clamped rays in surface (CCW) order.
    pub rays: Vec<Ray>,
    /// Inserted layer points (CSR by ray; origins excluded).
    pub layer: LayerPoints,
    /// The element's surface points (ray origins may repeat cusp origins).
    pub surface: Vec<Point2>,
    /// Cached `surface ++ layer.points` (see [`BoundaryLayer::all_points`]).
    all_points: Vec<Point2>,
    /// Cached merged border (see [`BoundaryLayer::outer_border`]).
    outer_border: Vec<Point2>,
}

impl BoundaryLayer {
    /// Assembles a finished layer, computing the derived point cloud and
    /// outer border once. `rays` and `layer` must be final: the caches are
    /// not invalidated by later mutation (construction sites run after
    /// the last insertion pass).
    pub fn new(rays: Vec<Ray>, layer: LayerPoints, surface: Vec<Point2>) -> Self {
        let mut all_points = surface.clone();
        all_points.extend_from_slice(&layer.points);
        let outer_border = compute_outer_border(&rays, &layer);
        BoundaryLayer {
            rays,
            layer,
            surface,
            all_points,
            outer_border,
        }
    }

    /// All boundary-layer points: surface vertices plus inserted layer
    /// points — the point cloud handed to the parallel triangulation.
    pub fn all_points(&self) -> &[Point2] {
        &self.all_points
    }

    /// Outer border polyline (CCW): the outermost point of each ray (its
    /// tip, or its origin where no layers fit).
    ///
    /// Consecutive near-coincident tips are merged: converging clamped
    /// rays in concavities can leave neighboring tips separated by mere
    /// ulps, and such micro-segments poison downstream refinement with
    /// nanometre encroachment splits. A tip is dropped when it lies within
    /// `1e-6` of the local layer height of its predecessor.
    pub fn outer_border(&self) -> &[Point2] {
        &self.outer_border
    }

    /// Summary statistics.
    pub fn stats(&self) -> LayerStats {
        layer_stats(&self.layer)
    }
}

/// The tip-merging border walk behind [`BoundaryLayer::outer_border`].
fn compute_outer_border(rays: &[Ray], layer: &LayerPoints) -> Vec<Point2> {
    let mut border: Vec<Point2> = Vec::with_capacity(rays.len());
    let mut last_height = 0.0f64;
    for (i, ray) in rays.iter().enumerate() {
        let p = layer.tip(i).unwrap_or(ray.origin);
        let h = p.distance(ray.origin);
        if let Some(&prev) = border.last() {
            let scale = h.max(last_height).max(f64::MIN_POSITIVE);
            if prev.distance(p) <= 1e-6 * scale {
                continue;
            }
        }
        border.push(p);
        last_height = h;
    }
    // Close-up: the last tip may nearly coincide with the first.
    while border.len() > 1 {
        let first = border[0];
        let last = *border.last().unwrap();
        let scale = last_height.max(f64::MIN_POSITIVE);
        if first == last || first.distance(last) <= 1e-6 * scale {
            border.pop();
        } else {
            break;
        }
    }
    border
}

/// Height-smoothing slopes (see [`crate::insert::smooth_heights`]): the
/// boundary-layer top may rise at most ~35 degrees along the surface and
/// roughly double per ray across a cusp fan.
const SMOOTH_L_DIST: f64 = 0.7;
const SMOOTH_L_ANG: f64 = 1.5;

/// Inserts points, smooths the realized tip heights into a Lipschitz
/// profile, and re-inserts — the Figure 5 smooth transition.
fn insert_with_smooth_fans<G: GrowthFn>(
    rays: &mut [Ray],
    growth: &G,
    params: &BlParams,
) -> crate::insert::LayerPoints {
    let first = insert_points(rays, growth, &params.insert);
    crate::insert::smooth_heights(rays, &first, SMOOTH_L_DIST, SMOOTH_L_ANG);
    insert_points(rays, growth, &params.insert)
}

/// Generates the boundary layer for a single isolated element.
pub fn build_boundary_layer<G: GrowthFn>(
    surface: &[Point2],
    growth: &G,
    params: &BlParams,
) -> BoundaryLayer {
    let mut rays = emit_rays(surface, params.height, &params.corners);
    resolve_self_intersections(&mut rays);
    let layer = insert_with_smooth_fans(&mut rays, growth, params);
    BoundaryLayer::new(rays, layer, surface.to_vec())
}

/// Generates boundary layers for a multi-element configuration, resolving
/// both self- and multi-element intersections (§II.B's hierarchical
/// pipeline) before inserting points.
pub fn build_multielement_layers<G: GrowthFn>(
    surfaces: &[Vec<Point2>],
    growth: &G,
    params: &BlParams,
) -> Vec<BoundaryLayer> {
    // Emit + self-resolve per element.
    let mut all_rays: Vec<Vec<Ray>> = surfaces
        .iter()
        .map(|s| {
            let mut r = emit_rays(s, params.height, &params.corners);
            resolve_self_intersections(&mut r);
            r
        })
        .collect();
    // Multi-element passes: clamp each element's rays against every other
    // element's layer border. One pass per ordered pair; clamping only
    // shortens the obstacle borders, so re-running the pair set once more
    // keeps everything consistent.
    for _ in 0..2 {
        for a in 0..all_rays.len() {
            for b in 0..all_rays.len() {
                if a == b {
                    continue;
                }
                let rays_b = all_rays[b].clone();
                resolve_against_element(&mut all_rays[a], &rays_b, &surfaces[b]);
            }
        }
    }
    all_rays
        .into_iter()
        .zip(surfaces)
        .map(|(mut rays, surface)| {
            let layer = insert_with_smooth_fans(&mut rays, growth, params);
            BoundaryLayer::new(rays, layer, surface.clone())
        })
        .collect()
}

/// `true` when no boundary-layer point of `a` lies inside the solid or the
/// boundary layer of `b` — the postcondition of multi-element resolution.
pub fn layers_disjoint(a: &BoundaryLayer, b: &BoundaryLayer) -> bool {
    let border_b = b.outer_border();
    if border_b.len() < 3 {
        return true;
    }
    for &p in &a.layer.points {
        if adm_geom::polygon::contains_point(border_b, p) && !on_border(border_b, p) {
            return false;
        }
    }
    true
}

fn on_border(border: &[Point2], p: Point2) -> bool {
    let n = border.len();
    (0..n).any(|i| Segment::new(border[i], border[(i + 1) % n]).distance_to_point(p) < 1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::growth::Geometric;
    use adm_geom::polygon::{contains_point, is_simple};

    fn p(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    fn circle(n: usize, r: f64, cx: f64, cy: f64) -> Vec<Point2> {
        (0..n)
            .map(|k| {
                let th = k as f64 * std::f64::consts::TAU / n as f64;
                p(cx + r * th.cos(), cy + r * th.sin())
            })
            .collect()
    }

    #[test]
    fn single_element_layer_basics() {
        let surf = circle(64, 1.0, 0.0, 0.0);
        let g = Geometric::new(0.005, 1.25);
        let bl = build_boundary_layer(&surf, &g, &BlParams::default());
        let stats = bl.stats();
        assert!(stats.points > 100);
        assert!(stats.min_layers >= 1);
        // No layer point inside the solid.
        for &q in &bl.layer.points {
            assert!(!contains_point(&surf, q));
        }
    }

    #[test]
    fn outer_border_is_simple_and_encloses_surface() {
        let surf = circle(96, 1.0, 0.0, 0.0);
        let g = Geometric::new(0.005, 1.25);
        let bl = build_boundary_layer(&surf, &g, &BlParams::default());
        let border = bl.outer_border();
        assert!(border.len() >= 32);
        assert!(is_simple(border), "outer border self-intersects");
        // Every surface point lies inside the border.
        for &q in &surf {
            assert!(contains_point(border, q));
        }
    }

    #[test]
    fn multielement_layers_do_not_overlap() {
        // Two circles 0.5 apart with layer height 0.4: unresolved layers
        // would overlap.
        let s1 = circle(48, 1.0, 0.0, 0.0);
        let s2 = circle(48, 1.0, 2.5, 0.0);
        let g = Geometric::new(0.01, 1.3);
        let params = BlParams {
            height: 0.4,
            ..Default::default()
        };
        let layers = build_multielement_layers(&[s1, s2], &g, &params);
        assert_eq!(layers.len(), 2);
        assert!(layers_disjoint(&layers[0], &layers[1]));
        assert!(layers_disjoint(&layers[1], &layers[0]));
        // Rays facing the gap were clamped below the requested height.
        let clamped = layers[0]
            .rays
            .iter()
            .filter(|r| r.max_height < params.height - 1e-12)
            .count();
        assert!(clamped > 0, "no gap clamping happened");
    }

    #[test]
    fn far_elements_are_not_affected_by_each_other() {
        // Widely separated elements must produce exactly the same layers
        // as isolated builds (no spurious multi-element clamping).
        let s1 = circle(32, 1.0, 0.0, 0.0);
        let s2 = circle(32, 1.0, 50.0, 0.0);
        let g = Geometric::new(0.01, 1.3);
        let params = BlParams {
            height: 0.3,
            ..Default::default()
        };
        let layers = build_multielement_layers(&[s1.clone(), s2.clone()], &g, &params);
        let iso1 = build_boundary_layer(&s1, &g, &params);
        let iso2 = build_boundary_layer(&s2, &g, &params);
        assert_eq!(layers[0].layer.points, iso1.layer.points);
        assert_eq!(layers[1].layer.points, iso2.layer.points);
    }

    #[test]
    fn all_points_counts_add_up() {
        let surf = circle(40, 1.0, 0.0, 0.0);
        let g = Geometric::new(0.01, 1.3);
        let bl = build_boundary_layer(&surf, &g, &BlParams::default());
        assert_eq!(
            bl.all_points().len(),
            bl.surface.len() + bl.layer.points.len()
        );
    }
}
