//! Remote-memory-access window (paper §III).
//!
//! The paper allocates an MPI window on the root rank holding one work-load
//! estimate per process; communicator threads `MPI_Put` their local
//! estimate and `MPI_Get` the whole array when they need to pick a victim
//! to request work from. RMA bypasses the remote CPU (InfiniBand NIC
//! transfers); here the window is an atomic array shared by reference —
//! the same one-sided semantics (no receiver-side code runs) without the
//! hardware.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Observer for window traffic, installed by a fault-injecting transport.
///
/// Real RMA reads race with remote puts: the value a rank observes may be
/// arbitrarily stale. The production window is exact (shared atomics); a
/// hook restores the weaker semantics under test by substituting the
/// *estimate* reads ([`Window::get_all`], [`Window::argmax_excluding`])
/// with historical values. Single-slot [`Window::get`] and the
/// fetch-and-op calls stay exact — termination counters must never run
/// backwards.
pub trait WindowHook: Send + Sync {
    /// Called on every window operation before it executes — the
    /// simulator's scheduling yield point for RMA traffic.
    fn on_op(&self);

    /// Records a completed put (offset, new value) for stale-read replay.
    fn on_put(&self, offset: usize, value: u64);

    /// Optionally replaces the value array seen by estimate reads.
    /// `current` is the exact snapshot; return `None` to keep it.
    fn estimates(&self, current: &[u64]) -> Option<Vec<u64>>;
}

/// A one-sided memory window of `u64` slots.
#[derive(Clone)]
pub struct Window {
    slots: Arc<Vec<AtomicU64>>,
    hook: Option<Arc<dyn WindowHook>>,
}

impl Window {
    /// Collectively creates a window with `len` slots (zero-initialized).
    /// In MPI terms the memory lives on the root; every rank holds the
    /// same handle.
    pub fn new(len: usize) -> Self {
        Window {
            slots: Arc::new((0..len).map(|_| AtomicU64::new(0)).collect()),
            hook: None,
        }
    }

    /// Creates a window whose traffic is observed (and whose estimate
    /// reads may be weakened) by `hook`.
    pub fn with_hook(len: usize, hook: Arc<dyn WindowHook>) -> Self {
        Window {
            slots: Arc::new((0..len).map(|_| AtomicU64::new(0)).collect()),
            hook: Some(hook),
        }
    }

    #[inline]
    fn yield_op(&self) {
        if let Some(h) = &self.hook {
            h.on_op();
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when the window has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// One-sided put: stores `value` at `offset`.
    pub fn put(&self, offset: usize, value: u64) {
        self.yield_op();
        self.slots[offset].store(value, Ordering::Release);
        if let Some(h) = &self.hook {
            h.on_put(offset, value);
        }
    }

    /// One-sided get of a single slot (exact, never stale — used for
    /// termination counters).
    pub fn get(&self, offset: usize) -> u64 {
        self.yield_op();
        self.slots[offset].load(Ordering::Acquire)
    }

    /// One-sided get of the entire window (the victim-selection read).
    /// Under a fault-injecting hook the returned estimates may be stale.
    pub fn get_all(&self) -> Vec<u64> {
        self.yield_op();
        let exact: Vec<u64> = self
            .slots
            .iter()
            .map(|s| s.load(Ordering::Acquire))
            .collect();
        match &self.hook {
            Some(h) => h.estimates(&exact).unwrap_or(exact),
            None => exact,
        }
    }

    /// Atomic fetch-and-add (MPI_Accumulate with MPI_SUM).
    pub fn fetch_add(&self, offset: usize, delta: u64) -> u64 {
        self.yield_op();
        let prev = self.slots[offset].fetch_add(delta, Ordering::AcqRel);
        if let Some(h) = &self.hook {
            h.on_put(offset, prev + delta);
        }
        prev
    }

    /// Atomic saturating subtraction.
    pub fn fetch_sub_saturating(&self, offset: usize, delta: u64) -> u64 {
        self.yield_op();
        let mut cur = self.slots[offset].load(Ordering::Acquire);
        loop {
            let next = cur.saturating_sub(delta);
            match self.slots[offset].compare_exchange_weak(
                cur,
                next,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(prev) => {
                    if let Some(h) = &self.hook {
                        h.on_put(offset, next);
                    }
                    return prev;
                }
                Err(actual) => cur = actual,
            }
        }
    }

    /// Index of the slot with the maximum value among the first `limit`
    /// slots (ties to the lowest rank), excluding `exclude`. The limit
    /// matters when extra bookkeeping slots (e.g. a completion counter)
    /// share the window with the per-rank estimates. Returns `None` when
    /// all other slots are zero.
    pub fn argmax_excluding(&self, exclude: usize, limit: usize) -> Option<usize> {
        let all = self.get_all();
        let mut best: Option<(usize, u64)> = None;
        for (i, &v) in all.iter().take(limit).enumerate() {
            if i == exclude {
                continue;
            }
            if v > 0 && best.is_none_or(|(_, bv)| v > bv) {
                best = Some((i, v));
            }
        }
        best.map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::run;

    #[test]
    fn put_get_roundtrip() {
        let w = Window::new(4);
        w.put(2, 99);
        assert_eq!(w.get(2), 99);
        assert_eq!(w.get_all(), vec![0, 0, 99, 0]);
    }

    #[test]
    fn fetch_add_and_sub() {
        let w = Window::new(1);
        assert_eq!(w.fetch_add(0, 5), 0);
        assert_eq!(w.fetch_add(0, 3), 5);
        assert_eq!(w.fetch_sub_saturating(0, 100), 8);
        assert_eq!(w.get(0), 0);
    }

    #[test]
    fn argmax_excludes_self_and_zeros() {
        let w = Window::new(4);
        w.put(0, 10);
        w.put(1, 50);
        w.put(2, 50);
        assert_eq!(w.argmax_excluding(3, 4), Some(1)); // tie -> lowest rank
        assert_eq!(w.argmax_excluding(1, 4), Some(2));
        // A bookkeeping slot beyond the limit is never selected.
        w.put(3, 999);
        assert_eq!(w.argmax_excluding(0, 3), Some(1));
        let empty = Window::new(3);
        assert_eq!(empty.argmax_excluding(0, 3), None);
    }

    #[test]
    fn concurrent_puts_from_ranks() {
        let w = Window::new(8);
        let results = run(8, |comm| {
            let w = w.clone();
            w.put(comm.rank(), (comm.rank() as u64 + 1) * 10);
            comm.barrier();
            w.get_all()
        });
        for r in &results {
            assert_eq!(*r, vec![10, 20, 30, 40, 50, 60, 70, 80]);
        }
    }

    #[test]
    fn concurrent_accumulate_is_atomic() {
        let w = Window::new(1);
        run(8, |comm| {
            let w = w.clone();
            for _ in 0..1000 {
                w.fetch_add(0, 1);
            }
            comm.barrier();
        });
        assert_eq!(w.get(0), 8000);
    }
}
