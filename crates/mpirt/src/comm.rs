//! Rank abstraction and point-to-point messaging.
//!
//! `adm-mpirt` models the paper's MPI layer on a single machine: each
//! *rank* is an OS thread with private data, and all communication goes
//! through explicit messages (or the RMA window in [`crate::window`]) —
//! no shared mutable state leaks between ranks, preserving the
//! distributed-memory programming model of the original implementation
//! (MPICH v3.0, paper §III). The wire itself is a pluggable
//! [`Transport`]: real threads in production, a seeded discrete-event
//! simulation under test.

use crate::transport::{Lane, Payload, RawMsg, ThreadedTransport, Transport};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

/// Per-rank communicator handle (the `MPI_COMM_WORLD` view of one rank).
pub struct Comm {
    rank: usize,
    size: usize,
    transport: Arc<dyn Transport>,
    /// Messages received but not yet matched by a `recv` call.
    /// A `Mutex` (uncontended: only this rank touches it) keeps `Comm`
    /// `Sync`, so the mesher and communicator threads can share one handle.
    pending: std::sync::Mutex<VecDeque<RawMsg>>,
}

/// Creates a production (threaded) fabric and the per-rank communicators
/// for `size` ranks.
pub fn fabric(size: usize) -> Vec<Comm> {
    comms_for(Arc::new(ThreadedTransport::new(size)))
}

/// Builds the per-rank communicator handles over any transport.
pub fn comms_for(transport: Arc<dyn Transport>) -> Vec<Comm> {
    let size = transport.size();
    (0..size)
        .map(|rank| Comm {
            rank,
            size,
            transport: transport.clone(),
            pending: std::sync::Mutex::new(VecDeque::new()),
        })
        .collect()
}

/// Source selector for receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Src {
    /// Any source (`MPI_ANY_SOURCE`).
    Any,
    /// A specific rank.
    Rank(usize),
}

impl Comm {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The underlying transport.
    pub fn transport(&self) -> &Arc<dyn Transport> {
        &self.transport
    }

    /// Transport clock (wall time in production, virtual time under
    /// simulation). Protocol timeouts must use this, never `Instant`.
    pub fn now(&self) -> Duration {
        self.transport.now()
    }

    /// Sends `value` to `dest` with `tag` (non-blocking, buffered).
    pub fn send<T: Send + 'static>(&self, dest: usize, tag: u64, value: T) {
        self.transport
            .send(self.rank, dest, tag, Payload::opaque(value));
    }

    /// Like [`Comm::send`], for payloads the fault-injecting transport is
    /// allowed to duplicate in flight. Protocols that dedup on receipt
    /// (the load balancer) send through this.
    pub fn send_cloneable<T: Clone + Send + 'static>(&self, dest: usize, tag: u64, value: T) {
        self.transport
            .send(self.rank, dest, tag, Payload::cloneable(value));
    }

    /// Blocking receive matching `(src, tag)` and payload type `T`.
    /// Non-matching messages are buffered for later receives (MPI matching
    /// semantics). Panics if a matching envelope has the wrong type.
    pub fn recv<T: Send + 'static>(&self, src: Src, tag: u64) -> (usize, T) {
        // Scan the pending buffer first.
        {
            let mut pending = self.pending.lock().unwrap();
            if let Some(pos) = pending
                .iter()
                .position(|e| e.tag == tag && src_matches(src, e.src))
            {
                let e = pending.remove(pos).unwrap();
                return unwrap_payload(e);
            }
        }
        loop {
            let e = self.transport.recv_next(self.rank);
            if e.tag == tag && src_matches(src, e.src) {
                return unwrap_payload(e);
            }
            self.pending.lock().unwrap().push_back(e);
        }
    }

    /// Non-blocking receive; returns `None` when no matching message is
    /// available right now.
    pub fn try_recv<T: Send + 'static>(&self, src: Src, tag: u64) -> Option<(usize, T)> {
        {
            let mut pending = self.pending.lock().unwrap();
            if let Some(pos) = pending
                .iter()
                .position(|e| e.tag == tag && src_matches(src, e.src))
            {
                let e = pending.remove(pos).unwrap();
                return Some(unwrap_payload(e));
            }
        }
        while let Some(e) = self.transport.try_poll(self.rank) {
            if e.tag == tag && src_matches(src, e.src) {
                return Some(unwrap_payload(e));
            }
            self.pending.lock().unwrap().push_back(e);
        }
        None
    }

    /// Idles for up to `dur`; wakes early on incoming traffic or
    /// [`Comm::wake`]. The sanctioned replacement for sleep-polling.
    pub fn pause(&self, dur: Duration) {
        self.transport.pause(self.rank, dur);
    }

    /// Wakes this rank's paused threads (e.g. the mesher waiting for the
    /// communicator to queue transferred work).
    pub fn wake(&self) {
        self.transport.notify(self.rank);
    }

    /// Accounts `dur` of local compute against the transport clock: free
    /// in production (the work itself already took the time), but
    /// advances virtual time under simulation so load metrics and
    /// protocol timeouts see realistic task durations. `dur` must be a
    /// deterministic function of the work, never a measured elapsed time.
    pub fn advance(&self, dur: Duration) {
        self.transport.advance(self.rank, dur);
    }

    /// Synchronizes all ranks.
    pub fn barrier(&self) {
        self.transport.barrier(self.rank);
    }

    /// Gathers one value per rank at `root` (returns `Some(values)` only
    /// at the root, ordered by rank).
    pub fn gather<T: Send + 'static>(&self, root: usize, value: T) -> Option<Vec<T>> {
        const GATHER_TAG: u64 = u64::MAX - 1;
        if self.rank == root {
            let mut slots: Vec<Option<T>> = (0..self.size).map(|_| None).collect();
            slots[root] = Some(value);
            for _ in 0..self.size - 1 {
                let (src, v) = self.recv::<T>(Src::Any, GATHER_TAG);
                slots[src] = Some(v);
            }
            Some(slots.into_iter().map(|s| s.expect("gather slot")).collect())
        } else {
            self.send(root, GATHER_TAG, value);
            None
        }
    }

    /// Broadcasts `value` from `root`; every rank returns the value.
    pub fn bcast<T: Clone + Send + 'static>(&self, root: usize, value: Option<T>) -> T {
        const BCAST_TAG: u64 = u64::MAX - 2;
        if self.rank == root {
            let v = value.expect("root must provide the broadcast value");
            for dest in 0..self.size {
                if dest != root {
                    self.send(dest, BCAST_TAG, v.clone());
                }
            }
            v
        } else {
            self.recv::<T>(Src::Rank(root), BCAST_TAG).1
        }
    }
}

#[inline]
fn src_matches(sel: Src, actual: usize) -> bool {
    match sel {
        Src::Any => true,
        Src::Rank(r) => r == actual,
    }
}

fn unwrap_payload<T: 'static>(e: RawMsg) -> (usize, T) {
    let src = e.src;
    match e.payload.downcast::<T>() {
        Ok(v) => (src, *v),
        Err(_) => panic!(
            "type mismatch for message from rank {src} tag: expected {}",
            std::any::type_name::<T>()
        ),
    }
}

/// Spawns `size` ranks running `body` and returns their results in rank
/// order. This is the `mpiexec` of the runtime.
pub fn run<R, F>(size: usize, body: F) -> Vec<R>
where
    R: Send,
    F: Fn(Comm) -> R + Sync,
{
    run_with(Arc::new(ThreadedTransport::new(size)), body)
}

/// [`run`] over an explicit transport (the entry point for fault-injected
/// simulation runs).
pub fn run_with<R, F>(transport: Arc<dyn Transport>, body: F) -> Vec<R>
where
    R: Send,
    F: Fn(Comm) -> R + Sync,
{
    let comms = comms_for(transport.clone());
    std::thread::scope(|scope| {
        let handles: Vec<_> = comms
            .into_iter()
            .enumerate()
            .map(|(rank, comm)| {
                let body = &body;
                let transport = transport.clone();
                scope.spawn(move || {
                    transport.thread_start(rank, Lane::Main);
                    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(comm)));
                    match out {
                        Ok(v) => {
                            transport.thread_exit(rank, Lane::Main);
                            v
                        }
                        Err(p) => {
                            // Poison the transport so peers blocked on this
                            // rank unwind instead of hanging the test run.
                            transport.abort();
                            std::panic::resume_unwind(p);
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_pass() {
        let results = run(4, |comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(next, 7, comm.rank() as u64);
            let (src, v) = comm.recv::<u64>(Src::Rank(prev), 7);
            (src, v)
        });
        for (rank, (src, v)) in results.iter().enumerate() {
            let prev = (rank + 3) % 4;
            assert_eq!(*src, prev);
            assert_eq!(*v as usize, prev);
        }
    }

    #[test]
    fn tag_matching_buffers_out_of_order() {
        let results = run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, "first".to_string());
                comm.send(1, 2, "second".to_string());
                String::new()
            } else {
                // Receive tag 2 first: tag-1 message must be buffered.
                let (_, b) = comm.recv::<String>(Src::Rank(0), 2);
                let (_, a) = comm.recv::<String>(Src::Rank(0), 1);
                format!("{b}/{a}")
            }
        });
        assert_eq!(results[1], "second/first");
    }

    #[test]
    fn any_source_receive() {
        let results = run(3, |comm| {
            if comm.rank() == 0 {
                let mut got = Vec::new();
                for _ in 0..2 {
                    let (src, v) = comm.recv::<usize>(Src::Any, 5);
                    got.push((src, v));
                }
                got.sort_unstable();
                got
            } else {
                comm.send(0, 5, comm.rank() * 10);
                vec![]
            }
        });
        assert_eq!(results[0], vec![(1, 10), (2, 20)]);
    }

    #[test]
    fn try_recv_nonblocking() {
        let results = run(2, |comm| {
            if comm.rank() == 0 {
                comm.barrier(); // rank 1 polls before anything is sent
                comm.send(1, 9, 42u32);
                comm.barrier();
                0
            } else {
                let early = comm.try_recv::<u32>(Src::Any, 9);
                assert!(early.is_none());
                comm.barrier();
                comm.barrier();
                // Message is now in flight or delivered.
                let (_, v) = comm.recv::<u32>(Src::Any, 9);
                v
            }
        });
        assert_eq!(results[1], 42);
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let results = run(4, |comm| comm.gather(0, comm.rank() as u64 * 100));
        assert_eq!(results[0], Some(vec![0, 100, 200, 300]));
        assert!(results[1..].iter().all(|r| r.is_none()));
    }

    #[test]
    fn bcast_distributes_value() {
        let results = run(4, |comm| {
            if comm.rank() == 2 {
                comm.bcast(2, Some("payload".to_string()))
            } else {
                comm.bcast::<String>(2, None)
            }
        });
        assert!(results.iter().all(|v| v == "payload"));
    }

    #[test]
    fn typed_payloads_roundtrip() {
        #[derive(Debug, PartialEq, Clone)]
        struct Sub {
            pts: Vec<(f64, f64)>,
            level: u32,
        }
        let results = run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(
                    1,
                    3,
                    Sub {
                        pts: vec![(1.0, 2.0), (3.0, 4.0)],
                        level: 7,
                    },
                );
                None
            } else {
                Some(comm.recv::<Sub>(Src::Rank(0), 3).1)
            }
        });
        let got = results[1].clone().unwrap();
        assert_eq!(got.level, 7);
        assert_eq!(got.pts.len(), 2);
    }
}
