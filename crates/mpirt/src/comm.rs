//! Rank abstraction and point-to-point messaging.
//!
//! `adm-mpirt` models the paper's MPI layer on a single machine: each
//! *rank* is an OS thread with private data, and all communication goes
//! through explicit messages (or the RMA window in [`crate::window`]) —
//! no shared mutable state leaks between ranks, preserving the
//! distributed-memory programming model of the original implementation
//! (MPICH v3.0, paper §III).

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::any::Any;
use std::collections::VecDeque;
use std::sync::Arc;

/// A typed message envelope.
struct Envelope {
    src: usize,
    tag: u64,
    payload: Box<dyn Any + Send>,
}

/// Shared communication fabric.
pub struct Fabric {
    senders: Vec<Sender<Envelope>>,
    barrier: Arc<std::sync::Barrier>,
}

/// Per-rank communicator handle (the `MPI_COMM_WORLD` view of one rank).
pub struct Comm {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Envelope>>,
    inbox: Receiver<Envelope>,
    /// Messages received but not yet matched by a `recv` call.
    /// A `Mutex` (uncontended: only this rank touches it) keeps `Comm`
    /// `Sync`, so the mesher and communicator threads can share one handle.
    pending: std::sync::Mutex<VecDeque<Envelope>>,
    barrier: Arc<std::sync::Barrier>,
}

/// Creates a fabric and the per-rank communicators for `size` ranks.
pub fn fabric(size: usize) -> Vec<Comm> {
    assert!(size >= 1);
    let mut senders = Vec::with_capacity(size);
    let mut receivers = Vec::with_capacity(size);
    for _ in 0..size {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(rx);
    }
    let fabric = Fabric {
        senders,
        barrier: Arc::new(std::sync::Barrier::new(size)),
    };
    receivers
        .into_iter()
        .enumerate()
        .map(|(rank, inbox)| Comm {
            rank,
            size,
            senders: fabric.senders.clone(),
            inbox,
            pending: std::sync::Mutex::new(VecDeque::new()),
            barrier: fabric.barrier.clone(),
        })
        .collect()
}

/// Source selector for receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Src {
    /// Any source (`MPI_ANY_SOURCE`).
    Any,
    /// A specific rank.
    Rank(usize),
}

impl Comm {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Sends `value` to `dest` with `tag` (non-blocking, buffered).
    pub fn send<T: Send + 'static>(&self, dest: usize, tag: u64, value: T) {
        self.senders[dest]
            .send(Envelope {
                src: self.rank,
                tag,
                payload: Box::new(value),
            })
            .expect("destination rank hung up");
    }

    /// Blocking receive matching `(src, tag)` and payload type `T`.
    /// Non-matching messages are buffered for later receives (MPI matching
    /// semantics). Panics if a matching envelope has the wrong type.
    pub fn recv<T: Send + 'static>(&self, src: Src, tag: u64) -> (usize, T) {
        // Scan the pending buffer first.
        {
            let mut pending = self.pending.lock().unwrap();
            if let Some(pos) = pending
                .iter()
                .position(|e| e.tag == tag && src_matches(src, e.src))
            {
                let e = pending.remove(pos).unwrap();
                return unwrap_payload(e);
            }
        }
        loop {
            let e = self.inbox.recv().expect("fabric closed");
            if e.tag == tag && src_matches(src, e.src) {
                return unwrap_payload(e);
            }
            self.pending.lock().unwrap().push_back(e);
        }
    }

    /// Non-blocking receive; returns `None` when no matching message is
    /// available right now.
    pub fn try_recv<T: Send + 'static>(&self, src: Src, tag: u64) -> Option<(usize, T)> {
        {
            let mut pending = self.pending.lock().unwrap();
            if let Some(pos) = pending
                .iter()
                .position(|e| e.tag == tag && src_matches(src, e.src))
            {
                let e = pending.remove(pos).unwrap();
                return Some(unwrap_payload(e));
            }
        }
        while let Ok(e) = self.inbox.try_recv() {
            if e.tag == tag && src_matches(src, e.src) {
                return Some(unwrap_payload(e));
            }
            self.pending.lock().unwrap().push_back(e);
        }
        None
    }

    /// Synchronizes all ranks.
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// Gathers one value per rank at `root` (returns `Some(values)` only
    /// at the root, ordered by rank).
    pub fn gather<T: Send + 'static>(&self, root: usize, value: T) -> Option<Vec<T>> {
        const GATHER_TAG: u64 = u64::MAX - 1;
        if self.rank == root {
            let mut slots: Vec<Option<T>> = (0..self.size).map(|_| None).collect();
            slots[root] = Some(value);
            for _ in 0..self.size - 1 {
                let (src, v) = self.recv::<T>(Src::Any, GATHER_TAG);
                slots[src] = Some(v);
            }
            Some(slots.into_iter().map(|s| s.expect("gather slot")).collect())
        } else {
            self.send(root, GATHER_TAG, value);
            None
        }
    }

    /// Broadcasts `value` from `root`; every rank returns the value.
    pub fn bcast<T: Clone + Send + 'static>(&self, root: usize, value: Option<T>) -> T {
        const BCAST_TAG: u64 = u64::MAX - 2;
        if self.rank == root {
            let v = value.expect("root must provide the broadcast value");
            for dest in 0..self.size {
                if dest != root {
                    self.send(dest, BCAST_TAG, v.clone());
                }
            }
            v
        } else {
            self.recv::<T>(Src::Rank(root), BCAST_TAG).1
        }
    }
}

#[inline]
fn src_matches(sel: Src, actual: usize) -> bool {
    match sel {
        Src::Any => true,
        Src::Rank(r) => r == actual,
    }
}

fn unwrap_payload<T: 'static>(e: Envelope) -> (usize, T) {
    let src = e.src;
    match e.payload.downcast::<T>() {
        Ok(v) => (src, *v),
        Err(_) => panic!(
            "type mismatch for message from rank {src} tag: expected {}",
            std::any::type_name::<T>()
        ),
    }
}

/// Spawns `size` ranks running `body` and returns their results in rank
/// order. This is the `mpiexec` of the runtime.
pub fn run<R, F>(size: usize, body: F) -> Vec<R>
where
    R: Send,
    F: Fn(Comm) -> R + Sync,
{
    let comms = fabric(size);
    std::thread::scope(|scope| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| {
                let body = &body;
                scope.spawn(move || body(comm))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_pass() {
        let results = run(4, |comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(next, 7, comm.rank() as u64);
            let (src, v) = comm.recv::<u64>(Src::Rank(prev), 7);
            (src, v)
        });
        for (rank, (src, v)) in results.iter().enumerate() {
            let prev = (rank + 3) % 4;
            assert_eq!(*src, prev);
            assert_eq!(*v as usize, prev);
        }
    }

    #[test]
    fn tag_matching_buffers_out_of_order() {
        let results = run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, "first".to_string());
                comm.send(1, 2, "second".to_string());
                String::new()
            } else {
                // Receive tag 2 first: tag-1 message must be buffered.
                let (_, b) = comm.recv::<String>(Src::Rank(0), 2);
                let (_, a) = comm.recv::<String>(Src::Rank(0), 1);
                format!("{b}/{a}")
            }
        });
        assert_eq!(results[1], "second/first");
    }

    #[test]
    fn any_source_receive() {
        let results = run(3, |comm| {
            if comm.rank() == 0 {
                let mut got = Vec::new();
                for _ in 0..2 {
                    let (src, v) = comm.recv::<usize>(Src::Any, 5);
                    got.push((src, v));
                }
                got.sort_unstable();
                got
            } else {
                comm.send(0, 5, comm.rank() * 10);
                vec![]
            }
        });
        assert_eq!(results[0], vec![(1, 10), (2, 20)]);
    }

    #[test]
    fn try_recv_nonblocking() {
        let results = run(2, |comm| {
            if comm.rank() == 0 {
                comm.barrier(); // rank 1 polls before anything is sent
                comm.send(1, 9, 42u32);
                comm.barrier();
                0
            } else {
                let early = comm.try_recv::<u32>(Src::Any, 9);
                assert!(early.is_none());
                comm.barrier();
                comm.barrier();
                // Message is now in flight or delivered.
                let (_, v) = comm.recv::<u32>(Src::Any, 9);
                v
            }
        });
        assert_eq!(results[1], 42);
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let results = run(4, |comm| comm.gather(0, comm.rank() as u64 * 100));
        assert_eq!(results[0], Some(vec![0, 100, 200, 300]));
        assert!(results[1..].iter().all(|r| r.is_none()));
    }

    #[test]
    fn bcast_distributes_value() {
        let results = run(4, |comm| {
            if comm.rank() == 2 {
                comm.bcast(2, Some("payload".to_string()))
            } else {
                comm.bcast::<String>(2, None)
            }
        });
        assert!(results.iter().all(|v| v == "payload"));
    }

    #[test]
    fn typed_payloads_roundtrip() {
        #[derive(Debug, PartialEq, Clone)]
        struct Sub {
            pts: Vec<(f64, f64)>,
            level: u32,
        }
        let results = run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(
                    1,
                    3,
                    Sub {
                        pts: vec![(1.0, 2.0), (3.0, 4.0)],
                        level: 7,
                    },
                );
                None
            } else {
                Some(comm.recv::<Sub>(Src::Rank(0), 3).1)
            }
        });
        let got = results[1].clone().unwrap();
        assert_eq!(got.level, 7);
        assert_eq!(got.pts.len(), 2);
    }
}
