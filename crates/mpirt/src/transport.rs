//! The transport abstraction under [`crate::comm::Comm`].
//!
//! The runtime's message plumbing is a swappable layer: the production
//! [`ThreadedTransport`] moves envelopes between OS threads with condvar
//! wakeups (no busy polling), while [`crate::simfault::SimTransport`]
//! replaces real time with a seeded discrete-event schedule and injects
//! message faults. Everything a rank does that can *block* or *order*
//! events — sends, receives, barrier, poll pauses, RMA window traffic —
//! goes through this trait, which is what makes a run replayable from a
//! seed.

use crate::window::Window;
use std::any::Any;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Which thread of a rank is talking to the transport. Every rank has a
/// `Main` lane (the mesher / user body); the load balancer adds one
/// `Helper` lane (the communicator thread). The simulator schedules by
/// `(rank, lane)`, so lane identity must be stable across runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lane {
    /// The rank's body thread (mesher).
    Main,
    /// The communicator thread.
    Helper,
}

/// An untyped message as carried by a transport.
pub struct RawMsg {
    /// Sending rank.
    pub src: usize,
    /// Message tag.
    pub tag: u64,
    /// The boxed value.
    pub payload: Box<dyn Any + Send>,
}

type Cloner = Arc<dyn Fn(&(dyn Any + Send)) -> Box<dyn Any + Send> + Send + Sync>;

/// A message payload handed to [`Transport::send`]. Payloads built with
/// [`Payload::cloneable`] carry a deep-copy hook, which is what lets the
/// fault injector *duplicate* them; opaque payloads are exempt from
/// duplication (but not from delay or reordering).
pub struct Payload {
    value: Box<dyn Any + Send>,
    cloner: Option<Cloner>,
}

impl Payload {
    /// Wraps a value that cannot be copied in flight.
    pub fn opaque<T: Send + 'static>(value: T) -> Self {
        Payload {
            value: Box::new(value),
            cloner: None,
        }
    }

    /// Wraps a value the transport may duplicate (fault injection).
    pub fn cloneable<T: Clone + Send + 'static>(value: T) -> Self {
        Payload {
            value: Box::new(value),
            cloner: Some(Arc::new(|any: &(dyn Any + Send)| {
                let v: &T = any.downcast_ref::<T>().expect("cloner type invariant");
                Box::new(v.clone())
            })),
        }
    }

    /// `true` when the payload may be duplicated (and, by the fault
    /// model's contract, dropped: only retry-protocol messages opt in).
    pub fn is_cloneable(&self) -> bool {
        self.cloner.is_some()
    }

    /// Deep-copies the payload when it was built with `cloneable`.
    pub fn try_clone(&self) -> Option<Payload> {
        self.cloner.as_ref().map(|c| Payload {
            value: c(self.value.as_ref()),
            cloner: Some(c.clone()),
        })
    }

    /// Unwraps the boxed value.
    pub fn into_value(self) -> Box<dyn Any + Send> {
        self.value
    }
}

/// A pluggable communication fabric for `size` ranks.
///
/// All methods take the calling rank explicitly; the simulator
/// additionally identifies the calling *thread* (lane) to schedule it.
pub trait Transport: Send + Sync {
    /// Number of ranks.
    fn size(&self) -> usize;

    /// Monotonic clock: wall time on the real transport, virtual time in
    /// simulation. Protocol timeouts must be measured with this.
    fn now(&self) -> Duration;

    /// Whether wall-clock worker threads (e.g. the tree-merge
    /// [`crate::Pool`]) may run alongside this transport. Real
    /// transports support them; virtual-time simulators return `false`
    /// so that pools degrade to their inline deterministic mode and
    /// trace fingerprints stay replay-identical.
    fn supports_worker_threads(&self) -> bool {
        true
    }

    /// Queues `payload` from `src` to `dest` (non-blocking, buffered).
    fn send(&self, src: usize, dest: usize, tag: u64, payload: Payload);

    /// Next undelivered envelope for `rank`, if any (non-blocking).
    fn try_poll(&self, rank: usize) -> Option<RawMsg>;

    /// Blocks until an envelope for `rank` arrives.
    fn recv_next(&self, rank: usize) -> RawMsg;

    /// Sleeps up to `dur`; may return early when a message arrives for
    /// `rank` or [`Transport::notify`] is called. This is the *only*
    /// sanctioned way for runtime loops to idle.
    fn pause(&self, rank: usize, dur: Duration);

    /// Accounts `dur` of local compute against the transport clock.
    /// A no-op in real time (the work itself already took it); the
    /// simulator advances virtual time — uninterruptibly, unlike
    /// [`Transport::pause`] — so load metrics and protocol timeouts see
    /// realistic task durations. `dur` must be a deterministic function
    /// of the work (never a measured elapsed time), or replay breaks.
    fn advance(&self, _rank: usize, _dur: Duration) {}

    /// Wakes any thread of `rank` blocked in [`Transport::pause`].
    fn notify(&self, rank: usize);

    /// Synchronizes all ranks (one call per rank).
    fn barrier(&self, rank: usize);

    /// Allocates an RMA window wired to this transport's fault model.
    fn window(&self, len: usize) -> Window;

    /// Announces the calling OS thread as `(rank, lane)`. The simulator
    /// blocks here until the thread is granted the schedule token.
    fn thread_start(&self, _rank: usize, _lane: Lane) {}

    /// Retires the calling thread from scheduling. Must be the thread's
    /// last transport call.
    fn thread_exit(&self, _rank: usize, _lane: Lane) {}

    /// Blocks (without yielding the schedule token) until `(rank, lane)`
    /// has registered — the spawn handshake that keeps thread creation
    /// deterministic under simulation.
    fn await_thread(&self, _rank: usize, _lane: Lane) {}

    /// Blocks until `(rank, lane)` has retired via
    /// [`Transport::thread_exit`], yielding the schedule token while
    /// waiting. Must precede any raw `JoinHandle::join` on a registered
    /// thread: a raw join blocks *outside* the transport, wedging the
    /// simulated schedule, and polling `is_finished` would tie the
    /// replayable schedule to real thread-exit timing. A no-op on the
    /// real transport, where the raw join alone is safe.
    fn join_thread(&self, _rank: usize, _lane: Lane) {}

    /// Marks the run as failed so peers blocked in the transport unwind
    /// instead of hanging. Called on the panic path.
    fn abort(&self) {}
}

/// [`adm_trace::Clock`] backed by [`Transport::now`]: wall time on the
/// threaded transport, the cooperative scheduler's virtual time under
/// simulation. Traces stamped through this clock are replay-stable —
/// the same simulation seed reproduces them byte-for-byte.
pub struct TransportClock(Arc<dyn Transport>);

impl TransportClock {
    /// Wraps a transport as a trace clock.
    pub fn new(transport: Arc<dyn Transport>) -> Self {
        TransportClock(transport)
    }
}

impl adm_trace::Clock for TransportClock {
    fn now(&self) -> Duration {
        self.0.now()
    }
}

/// One rank's mailbox on the threaded transport. The condvar covers both
/// message arrival and explicit [`Transport::notify`] wakeups, so idle
/// loops park instead of spinning.
struct Endpoint {
    /// (queue, wake epoch): the epoch advances on every send/notify so a
    /// pause that raced a wakeup still observes it.
    inbox: Mutex<(VecDeque<RawMsg>, u64)>,
    signal: Condvar,
}

/// The production transport: one mailbox per rank, real time, reliable
/// in-order delivery.
pub struct ThreadedTransport {
    endpoints: Vec<Endpoint>,
    barrier: std::sync::Barrier,
    origin: Instant,
}

impl ThreadedTransport {
    /// Creates a fabric for `size` ranks.
    pub fn new(size: usize) -> Self {
        assert!(size >= 1);
        ThreadedTransport {
            endpoints: (0..size)
                .map(|_| Endpoint {
                    inbox: Mutex::new((VecDeque::new(), 0)),
                    signal: Condvar::new(),
                })
                .collect(),
            barrier: std::sync::Barrier::new(size),
            origin: Instant::now(),
        }
    }
}

impl Transport for ThreadedTransport {
    fn size(&self) -> usize {
        self.endpoints.len()
    }

    fn now(&self) -> Duration {
        self.origin.elapsed()
    }

    fn send(&self, src: usize, dest: usize, tag: u64, payload: Payload) {
        let ep = &self.endpoints[dest];
        let mut g = ep.inbox.lock().unwrap();
        g.0.push_back(RawMsg {
            src,
            tag,
            payload: payload.into_value(),
        });
        g.1 += 1;
        drop(g);
        ep.signal.notify_all();
    }

    fn try_poll(&self, rank: usize) -> Option<RawMsg> {
        self.endpoints[rank].inbox.lock().unwrap().0.pop_front()
    }

    fn recv_next(&self, rank: usize) -> RawMsg {
        let ep = &self.endpoints[rank];
        let mut g = ep.inbox.lock().unwrap();
        loop {
            if let Some(m) = g.0.pop_front() {
                return m;
            }
            g = ep.signal.wait(g).unwrap();
        }
    }

    fn pause(&self, rank: usize, dur: Duration) {
        let ep = &self.endpoints[rank];
        let deadline = Instant::now() + dur;
        let mut g = ep.inbox.lock().unwrap();
        let epoch = g.1;
        // Park until woken (new message / notify) or the interval elapses;
        // an epoch advance between snapshot and wait is caught by the
        // pre-wait check, so no wakeup is lost.
        while g.1 == epoch && g.0.is_empty() {
            let now = Instant::now();
            if now >= deadline {
                return;
            }
            let (guard, timeout) = ep.signal.wait_timeout(g, deadline - now).unwrap();
            g = guard;
            if timeout.timed_out() {
                return;
            }
        }
    }

    fn notify(&self, rank: usize) {
        let ep = &self.endpoints[rank];
        let mut g = ep.inbox.lock().unwrap();
        g.1 += 1;
        drop(g);
        ep.signal.notify_all();
    }

    fn barrier(&self, _rank: usize) {
        self.barrier.wait();
    }

    fn window(&self, len: usize) -> Window {
        Window::new(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_then_poll_roundtrip() {
        let t = ThreadedTransport::new(2);
        t.send(0, 1, 7, Payload::opaque(41u32));
        let m = t.try_poll(1).expect("message queued");
        assert_eq!(m.src, 0);
        assert_eq!(m.tag, 7);
        assert_eq!(*m.payload.downcast::<u32>().unwrap(), 41);
        assert!(t.try_poll(1).is_none());
    }

    #[test]
    fn pause_wakes_on_send() {
        let t = Arc::new(ThreadedTransport::new(2));
        let t2 = t.clone();
        let start = Instant::now();
        let h = std::thread::spawn(move || {
            // Long pause, woken early by traffic.
            t2.pause(1, Duration::from_secs(5));
            start.elapsed()
        });
        std::thread::sleep(Duration::from_millis(20));
        t.send(0, 1, 1, Payload::opaque(()));
        let waited = h.join().unwrap();
        assert!(waited < Duration::from_secs(2), "pause did not wake early");
    }

    #[test]
    fn pause_times_out_without_traffic() {
        let t = ThreadedTransport::new(1);
        let start = Instant::now();
        t.pause(0, Duration::from_millis(10));
        assert!(start.elapsed() >= Duration::from_millis(9));
    }

    #[test]
    fn cloneable_payload_duplicates() {
        let p = Payload::cloneable(vec![1u8, 2, 3]);
        let q = p.try_clone().expect("cloneable");
        assert_eq!(
            *q.into_value().downcast::<Vec<u8>>().unwrap(),
            vec![1u8, 2, 3]
        );
        // The original is still intact.
        assert_eq!(
            *p.into_value().downcast::<Vec<u8>>().unwrap(),
            vec![1u8, 2, 3]
        );
        assert!(Payload::opaque(5u8).try_clone().is_none());
    }
}
