//! Dependency-free work-stealing pool for tree-parallel reductions.
//!
//! The merge phase and the forked divide-and-conquer triangulator both
//! decompose into strictly nested fork/join pairs, so the only
//! scheduling primitive this pool exposes is [`Pool::join`]: run two
//! closures, potentially in parallel, and return both results. Jobs
//! live on per-worker condvar-signalled deques (std threads only — no
//! rayon, matching the mesher/communicator thread discipline of the
//! rest of this crate): a worker pops its own lane LIFO and steals the
//! oldest job from a sibling lane when its own is empty. A thread
//! blocked in `join` *helps* — it first tries to reclaim the job it
//! just forked, then steals unrelated work — so the pool never
//! deadlocks on nested joins and the calling thread is never idle
//! while work remains.
//!
//! `Pool::new(0)` builds an **inline** pool: `join(a, b)` degenerates
//! to `(a(), b())` on the calling thread with no worker threads, no
//! queues and no nondeterminism. The pipeline selects this mode when
//! the transport does not support wall-clock worker threads (see
//! [`crate::Transport::supports_worker_threads`]), which keeps
//! virtual-time trace fingerprints replay-identical under
//! `SimTransport`.
//!
//! Determinism contract: the *results* of a `join` tree are always
//! deterministic (each forked closure writes a dedicated slot); only
//! the schedule varies. Callers that need deterministic *side-effect
//! order* (e.g. trace fingerprints) must use an inline pool.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

const PENDING: u8 = 0;
const RUNNING: u8 = 1;
const DONE: u8 = 2;

type BoxedJob = Box<dyn FnOnce() + Send + 'static>;
type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// One forked half of a `join`, shared between the forking thread and
/// whichever thread claims it. The closure is taken exactly once under
/// a `PENDING -> RUNNING` CAS; stale queue entries (the forker
/// reclaimed its own job without popping it) fail that CAS and are
/// dropped harmlessly.
struct JobCore {
    state: AtomicU8,
    func: Mutex<Option<BoxedJob>>,
    panic: Mutex<Option<PanicPayload>>,
    submit_lane: usize,
}

struct Shared {
    /// Lanes `0..threads` belong to the workers; lane `threads` is the
    /// external lane used by non-worker threads (the pipeline thread,
    /// transport rank threads) that call `join`.
    lanes: Vec<Mutex<VecDeque<Arc<JobCore>>>>,
    /// Generation counter bumped on every push and every completion;
    /// waiters park on `signal` and re-check their condition.
    gate: Mutex<u64>,
    signal: Condvar,
    shutdown: AtomicBool,
    steals: AtomicU64,
}

std::thread_local! {
    /// Lane index of the current thread if it is a worker of some pool.
    /// Only ever set by worker threads, which belong to exactly one
    /// pool for their whole lifetime.
    static CURRENT_LANE: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// Work-stealing fork/join pool. See the module docs for the
/// scheduling and determinism contract.
pub struct Pool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Pool {
    /// Build a pool with `threads` worker threads. `threads == 0`
    /// yields the inline deterministic pool.
    pub fn new(threads: usize) -> Pool {
        let shared = Arc::new(Shared {
            lanes: (0..threads.saturating_add(1).max(1))
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            gate: Mutex::new(0),
            signal: Condvar::new(),
            shutdown: AtomicBool::new(false),
            steals: AtomicU64::new(0),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("adm-pool-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool { shared, workers }
    }

    /// Number of worker threads (0 for the inline pool).
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Jobs executed by a thread other than the one that forked them.
    /// Monotonic over the pool's lifetime; callers that report per-job
    /// numbers (e.g. the pipeline's `merge.steals` counter, the mesh
    /// server's `serve.merge_steals` histogram) must snapshot before and
    /// after the job and publish the delta.
    pub fn steals(&self) -> u64 {
        self.shared.steals.load(Ordering::Relaxed)
    }

    /// Entries currently sitting in the lane deques, stale or live.
    /// After every outstanding `join` on this pool has returned, this is
    /// zero: claimed entries are popped, and inline-reclaimed entries are
    /// removed eagerly. A non-zero value at quiescence is a leak.
    pub fn queued_entries(&self) -> usize {
        self.shared
            .lanes
            .iter()
            .map(|l| l.lock().unwrap().len())
            .sum()
    }

    /// Allocated capacity of each lane's deque, in submit-lane order with
    /// the external lane last. Capacity tracks the high-water mark of
    /// simultaneously queued jobs (bounded by join-tree depth), never the
    /// job *count* — reusing one pool across many sequential jobs must
    /// not grow it.
    pub fn lane_capacities(&self) -> Vec<usize> {
        self.shared
            .lanes
            .iter()
            .map(|l| l.lock().unwrap().capacity())
            .collect()
    }

    /// Lane index of the current thread within this pool's lane space:
    /// a worker's own lane, or the shared external lane. Useful for
    /// labelling per-worker trace tracks.
    pub fn current_lane(&self) -> usize {
        CURRENT_LANE
            .with(|c| c.get())
            .unwrap_or(self.shared.lanes.len() - 1)
    }

    /// Run `a` and `b`, potentially in parallel, and return both
    /// results. `b` is forked onto the pool; the calling thread runs
    /// `a`, then reclaims `b` if it was not stolen, or helps with
    /// other queued jobs while waiting. Panics in either closure are
    /// propagated after *both* have finished, so borrowed state is
    /// never observed mid-unwind.
    pub fn join<RA, RB>(
        &self,
        a: impl FnOnce() -> RA + Send,
        b: impl FnOnce() -> RB + Send,
    ) -> (RA, RB)
    where
        RA: Send,
        RB: Send,
    {
        if self.workers.is_empty() {
            return (a(), b());
        }

        let mut rb: Option<RB> = None;
        let job = {
            let slot: &mut Option<RB> = &mut rb;
            let closure: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                *slot = Some(b());
            });
            // SAFETY: `join` does not return (or unwind past this
            // frame) until the job is DONE, so the borrow of `rb` and
            // of `b`'s captures outlives every possible execution of
            // the closure. Only the lifetime is erased.
            let closure: BoxedJob =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, BoxedJob>(closure) };
            let lane = self.current_lane();
            Arc::new(JobCore {
                state: AtomicU8::new(PENDING),
                func: Mutex::new(Some(closure)),
                panic: Mutex::new(None),
                submit_lane: lane,
            })
        };
        self.shared.lanes[job.submit_lane]
            .lock()
            .unwrap()
            .push_back(Arc::clone(&job));
        bump(&self.shared);

        let ra = catch_unwind(AssertUnwindSafe(a));

        // Wait for b: reclaim it inline if still pending, otherwise
        // help with unrelated work until its runner finishes.
        let my_lane = self.current_lane();
        loop {
            match job.state.load(Ordering::Acquire) {
                DONE => break,
                _ => {
                    if job
                        .state
                        .compare_exchange(PENDING, RUNNING, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        // Reclaimed inline: the queued entry is now stale.
                        // Remove it eagerly — on a long-lived pool that
                        // serves many sequential jobs (the mesh server's
                        // shared pool), leaving stale entries to be lazily
                        // dropped by the next scan would let the submit
                        // lane's deque grow between scans.
                        {
                            let mut q = self.shared.lanes[job.submit_lane].lock().unwrap();
                            if let Some(pos) = q.iter().position(|j| Arc::ptr_eq(j, &job)) {
                                q.remove(pos);
                            }
                        }
                        run_claimed(&self.shared, &job);
                        break;
                    }
                    if let Some((stolen, src)) = claim_job(&self.shared, my_lane) {
                        if src != my_lane {
                            self.shared.steals.fetch_add(1, Ordering::Relaxed);
                        }
                        run_claimed(&self.shared, &stolen);
                        continue;
                    }
                    let gate = self.shared.gate.lock().unwrap();
                    if job.state.load(Ordering::Acquire) != DONE {
                        drop(
                            self.shared
                                .signal
                                .wait_timeout(gate, Duration::from_millis(1))
                                .unwrap(),
                        );
                    }
                }
            }
        }

        let panicked = job.panic.lock().unwrap().take();
        match (ra, panicked) {
            (Ok(ra), None) => (ra, rb.take().expect("forked job completed without result")),
            (Err(p), _) | (Ok(_), Some(p)) => resume_unwind(p),
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        bump(&self.shared);
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn bump(shared: &Shared) {
    let mut gen = shared.gate.lock().unwrap();
    *gen += 1;
    drop(gen);
    shared.signal.notify_all();
}

/// Pop and claim one PENDING job: own lane back (LIFO), then sibling
/// lanes front (FIFO steal). Returns the job and its source lane.
fn claim_job(shared: &Shared, me: usize) -> Option<(Arc<JobCore>, usize)> {
    let n = shared.lanes.len();
    for k in 0..n {
        let lane = (me + k) % n;
        let mut q = shared.lanes[lane].lock().unwrap();
        while let Some(job) = if lane == me {
            q.pop_back()
        } else {
            q.pop_front()
        } {
            if job
                .state
                .compare_exchange(PENDING, RUNNING, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return Some((job, lane));
            }
            // Stale entry: already reclaimed inline by its forker.
        }
    }
    None
}

/// Run a job whose state CAS has already succeeded.
fn run_claimed(shared: &Shared, job: &JobCore) {
    let func = job
        .func
        .lock()
        .unwrap()
        .take()
        .expect("claimed job has no closure");
    if let Err(p) = catch_unwind(AssertUnwindSafe(func)) {
        *job.panic.lock().unwrap() = Some(p);
    }
    job.state.store(DONE, Ordering::Release);
    bump(shared);
}

fn worker_loop(shared: &Shared, me: usize) {
    CURRENT_LANE.with(|c| c.set(Some(me)));
    loop {
        if let Some((job, src)) = claim_job(shared, me) {
            if src != me {
                shared.steals.fetch_add(1, Ordering::Relaxed);
            }
            run_claimed(shared, &job);
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let gate = shared.gate.lock().unwrap();
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        drop(
            shared
                .signal
                .wait_timeout(gate, Duration::from_millis(50))
                .unwrap(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree_sum(pool: &Pool, lo: u64, hi: u64) -> u64 {
        if hi - lo <= 8 {
            return (lo..hi).sum();
        }
        let mid = lo + (hi - lo) / 2;
        let (l, r) = pool.join(|| tree_sum(pool, lo, mid), || tree_sum(pool, mid, hi));
        l + r
    }

    #[test]
    fn inline_pool_joins_sequentially() {
        let pool = Pool::new(0);
        assert_eq!(pool.threads(), 0);
        let (a, b) = pool.join(|| 2 + 2, || "b");
        assert_eq!((a, b), (4, "b"));
        assert_eq!(tree_sum(&pool, 0, 1000), 499_500);
        assert_eq!(pool.steals(), 0);
    }

    #[test]
    fn threaded_pool_matches_inline_result() {
        for threads in [1usize, 2, 4] {
            let pool = Pool::new(threads);
            assert_eq!(pool.threads(), threads);
            assert_eq!(tree_sum(&pool, 0, 10_000), 49_995_000);
        }
    }

    #[test]
    fn join_returns_borrowed_results() {
        let pool = Pool::new(2);
        let data: Vec<u64> = (0..128).collect();
        let (l, r) = pool.join(
            || data[..64].iter().sum::<u64>(),
            || data[64..].iter().sum::<u64>(),
        );
        assert_eq!(l + r, data.iter().sum::<u64>());
    }

    #[test]
    fn concurrent_external_callers_are_supported() {
        let pool = Arc::new(Pool::new(2));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || tree_sum(&pool, t * 1000, (t + 1) * 1000))
            })
            .collect();
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, (0u64..4000).sum());
    }

    #[test]
    fn pool_reuse_across_many_jobs_leaks_no_queue_state() {
        // The server shares one pool across every mesh job; a thousand
        // sequential join trees must leave the deques empty at each
        // quiescent point and never grow their allocated capacity with
        // the job count (capacity tracks join-tree depth, not history).
        for threads in [1usize, 2, 4] {
            let pool = Pool::new(threads);
            let mut high_water = 0usize;
            for job in 0..1000u64 {
                assert_eq!(tree_sum(&pool, job, job + 200), (job..job + 200).sum());
                assert_eq!(
                    pool.queued_entries(),
                    0,
                    "stale queue entries after job {job} ({threads} threads)"
                );
                let cap: usize = pool.lane_capacities().iter().sum();
                if job == 0 {
                    high_water = cap;
                }
                // Allow the first few jobs to establish the high-water
                // mark (steals can deepen a lane), then demand a plateau.
                if job < 10 {
                    high_water = high_water.max(cap);
                } else {
                    // A rare deep steal cascade may still nudge a lane, so
                    // allow a fixed headroom above the early high-water
                    // mark — what must never happen is capacity tracking
                    // the job count (a leak would add ~1 entry per job).
                    assert!(
                        cap <= high_water.max(256),
                        "lane capacity grew with job count: {cap} > {high_water} \
                         at job {job} ({threads} threads)"
                    );
                }
            }
        }
    }

    #[test]
    fn steals_are_monotonic_and_per_job_deltas_sum() {
        // `steals()` is cumulative by contract; per-job reporting is a
        // before/after delta. The deltas of consecutive jobs partition
        // the cumulative counter — no steal is ever double-reported.
        let pool = Pool::new(2);
        let mut last = pool.steals();
        let mut delta_sum = 0u64;
        for job in 0..50u64 {
            let before = pool.steals();
            assert!(before >= last, "steal counter went backwards");
            tree_sum(&pool, 0, 2000 + job);
            let after = pool.steals();
            assert!(after >= before);
            delta_sum += after - before;
            last = after;
        }
        assert_eq!(delta_sum, pool.steals(), "deltas must partition the total");
    }

    #[test]
    fn forked_panic_propagates_after_both_halves_finish() {
        let pool = Pool::new(2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.join(|| 1, || -> u32 { panic!("forked half failed") })
        }));
        assert!(caught.is_err());
        // The pool stays usable after a propagated panic.
        assert_eq!(tree_sum(&pool, 0, 100), 4950);
    }
}
