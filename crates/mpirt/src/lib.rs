//! # adm-mpirt — distributed-memory runtime model
//!
//! A faithful single-machine model of the paper's MPI + pthreads layer
//! (§III): ranks are OS threads with private memory, point-to-point typed
//! messages with tag/source matching, gather/broadcast/barrier
//! collectives, a one-sided **RMA window** for work-load estimates, and
//! the two-thread (mesher + communicator) dynamic load balancer with
//! priority-queue scheduling and threshold-triggered work requests
//! (§II.F).

pub mod comm;
pub mod loadbalance;
pub mod window;

pub use comm::{fabric, run, Comm, Src};
pub use loadbalance::{run_rank, run_rank_dynamic, BalancerConfig, RankStats, WorkItem, WorkQueue};
pub use window::Window;
