//! # adm-mpirt — distributed-memory runtime model
//!
//! A faithful single-machine model of the paper's MPI + pthreads layer
//! (§III): ranks are OS threads with private memory, point-to-point typed
//! messages with tag/source matching, gather/broadcast/barrier
//! collectives, a one-sided **RMA window** for work-load estimates, and
//! the two-thread (mesher + communicator) dynamic load balancer with
//! priority-queue scheduling and threshold-triggered work requests
//! (§II.F).

//!
//! Everything that can block or order events goes through a pluggable
//! [`transport::Transport`]: real threads in production
//! ([`transport::ThreadedTransport`]), or the seeded fault-injecting
//! discrete-event simulator ([`simfault::SimTransport`]) used by the
//! chaos tests to explore adversarial schedules deterministically.

pub mod comm;
pub mod loadbalance;
pub mod pool;
pub mod simfault;
pub mod transport;
pub mod window;

pub use comm::{comms_for, fabric, run, run_with, Comm, Src};
pub use loadbalance::{
    run_rank, run_rank_dynamic, run_rank_dynamic_traced, BalancerConfig, Protocol, RankStats,
    WorkItem, WorkQueue,
};
pub use pool::Pool;
pub use simfault::{FaultPlan, SimTransport, StallPlan};
pub use transport::{Lane, Payload, RawMsg, ThreadedTransport, Transport, TransportClock};
pub use window::{Window, WindowHook};
