//! Deterministic fault-injecting transport (the chaos-test engine).
//!
//! [`SimTransport`] replaces the threaded fabric with a seeded
//! discrete-event simulation: OS threads still execute the real runtime
//! code, but exactly **one** thread runs at a time (a cooperative
//! scheduling token), every blocking transport call is a yield point, and
//! the clock is *virtual* — it advances only when every thread is blocked,
//! jumping straight to the next message delivery or pause deadline. All
//! scheduling choices and fault decisions come from one [`DetRng`] stream
//! seeded by [`FaultPlan::seed`], so a seed fully determines the
//! interleaving, the message faults, and therefore the entire run: replay
//! a failing seed and the identical event trace unfolds (checked via
//! [`SimTransport::fingerprint`]).
//!
//! The fault model, per message and per seed:
//! - **latency + jitter**, with a *heavy-delay* probability that stretches
//!   individual messages enough to reorder them behind later sends;
//! - **drop** and **duplication** — applied only to payloads sent with
//!   [`crate::comm::Comm::send_cloneable`], i.e. messages a retry/dedup
//!   protocol has explicitly opted in; drops per (src, dest, tag) channel
//!   are capped at [`FaultPlan::max_consecutive_drops`] in a row (a
//!   *fair-lossy* link), which is what makes retry protocols live;
//! - **communicator stall**: one rank's pauses and sends are stretched by
//!   a factor inside a virtual-time window;
//! - **stale RMA estimates**: victim-selection reads of the work-estimate
//!   window may observe historical values (see [`WindowHook`]), while
//!   termination counters stay exact.
//!
//! Failure detection is part of the transport: if no thread is runnable
//! and no event is pending, the run is declared a **deadlock**; if virtual
//! time exceeds [`FaultPlan::max_virtual_ns`], a **livelock / lost work**
//! (e.g. a dropped transfer nobody retries). Either poisons the
//! simulation, and every blocked thread panics with the reason instead of
//! hanging the test suite.

use crate::transport::{Lane, Payload, RawMsg, Transport};
use crate::window::{Window, WindowHook};
use adm_simnet::{DetRng, EventQueue};
use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Stall window for one rank (victim chosen as `victim_salt % size` so a
/// plan is independent of the rank count it is applied to).
#[derive(Debug, Clone, Copy)]
pub struct StallPlan {
    /// Selects the stalled rank: `victim_salt % size`.
    pub victim_salt: u64,
    /// Virtual time (ns) the stall begins.
    pub from_ns: u64,
    /// Virtual time (ns) the stall ends.
    pub until_ns: u64,
    /// Multiplier applied to the victim's pauses and send latencies.
    pub factor: u64,
}

/// Seeded description of a simulated run: scheduling seed plus fault
/// probabilities. Everything is public so tests can craft exact regimes;
/// [`FaultPlan::reliable`] and [`FaultPlan::chaos`] cover the common ones.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed for the single RNG stream driving scheduling and faults.
    pub seed: u64,
    /// Base message latency (virtual ns).
    pub min_latency_ns: u64,
    /// Uniform extra latency in `[0, jitter_ns]`.
    pub jitter_ns: u64,
    /// Probability a message is *heavily* delayed (reordering).
    pub heavy_delay_p: f64,
    /// Latency multiplier for heavily delayed messages.
    pub heavy_factor: u64,
    /// Drop probability (cloneable payloads only).
    pub drop_p: f64,
    /// Fair-lossy cap: at most this many drops in a row per channel.
    pub max_consecutive_drops: u32,
    /// Duplication probability (cloneable payloads only).
    pub dup_p: f64,
    /// Optional communicator stall.
    pub stall: Option<StallPlan>,
    /// Probability a work-estimate slot read returns a stale value.
    pub stale_p: f64,
    /// Virtual-time budget; exceeding it poisons the run as a livelock.
    pub max_virtual_ns: u64,
}

impl FaultPlan {
    /// A fault-free plan: deterministic scheduling and small latencies,
    /// but no drops, duplicates, stalls, or stale reads.
    pub fn reliable(seed: u64) -> Self {
        FaultPlan {
            seed,
            min_latency_ns: 1_000,
            jitter_ns: 4_000,
            heavy_delay_p: 0.0,
            heavy_factor: 1,
            drop_p: 0.0,
            max_consecutive_drops: 0,
            dup_p: 0.0,
            stall: None,
            stale_p: 0.0,
            max_virtual_ns: 60_000_000_000,
        }
    }

    /// An adversarial plan whose entire regime (which faults are active
    /// and how hard) is derived from `seed`, so sweeping seeds explores
    /// qualitatively different failure modes, not just different dice.
    pub fn chaos(seed: u64) -> Self {
        let mut r = DetRng::new(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xC4A0_5FA1);
        FaultPlan {
            seed,
            min_latency_ns: 500 + r.range(0, 5_000),
            jitter_ns: r.range(1_000, 60_000),
            heavy_delay_p: 0.15 * r.unit(),
            heavy_factor: 10 + r.range(0, 90),
            drop_p: if r.chance(0.7) {
                0.03 + 0.27 * r.unit()
            } else {
                0.0
            },
            max_consecutive_drops: 2 + r.range(0, 3) as u32,
            dup_p: if r.chance(0.5) {
                0.02 + 0.18 * r.unit()
            } else {
                0.0
            },
            stall: if r.chance(0.4) {
                Some(StallPlan {
                    victim_salt: r.next_u64(),
                    from_ns: r.range(0, 50_000_000),
                    until_ns: 100_000_000 + r.range(0, 400_000_000),
                    factor: 5 + r.range(0, 45),
                })
            } else {
                None
            },
            stale_p: if r.chance(0.6) {
                0.1 + 0.4 * r.unit()
            } else {
                0.0
            },
            max_virtual_ns: 10_000_000_000,
        }
    }
}

/// Where a registered thread currently stands with the scheduler.
#[derive(Debug, Clone, Copy)]
enum ThreadState {
    /// Eligible for the token.
    Runnable,
    /// Blocked in `recv_next` on an empty mailbox.
    Recv,
    /// Idling until `deadline` (or earlier traffic/notify).
    Pause { deadline: u64 },
    /// Modeled local compute until `deadline`: unlike `Pause`, traffic
    /// and notify do *not* cut it short.
    Compute { deadline: u64 },
    /// Waiting for `target` to retire via `thread_exit`.
    Join { target: (usize, Lane) },
    /// Waiting at the barrier generation `gen`.
    Barrier { gen: u64 },
}

struct Deliver {
    dest: usize,
    msg: RawMsg,
}

struct State {
    now: u64,
    rng: DetRng,
    events: EventQueue<u64, Deliver>,
    threads: BTreeMap<(usize, Lane), ThreadState>,
    /// Every `(rank, lane)` that ever registered (insert-only), for the
    /// `await_thread` handshake.
    registered: BTreeSet<(usize, Lane)>,
    running: Option<(usize, Lane)>,
    /// The start gate: no token is granted until all `size` Main lanes
    /// registered, so the first scheduling decision sees a complete,
    /// deterministic candidate set.
    gate_open: bool,
    started_mains: usize,
    mailboxes: Vec<VecDeque<RawMsg>>,
    barrier_gen: u64,
    barrier_arrived: usize,
    /// Consecutive-drop counters per (src, dest, tag) channel.
    chan_drops: BTreeMap<(usize, usize, u64), u32>,
    poisoned: Option<String>,
    trace_hash: u64,
    trace_len: u64,
}

// Trace event codes (FNV-mixed into the fingerprint).
const TR_SCHED: u64 = 1;
const TR_SEND: u64 = 2;
const TR_DROP: u64 = 3;
const TR_DUP: u64 = 4;
const TR_DELIVER: u64 = 5;
const TR_RECV: u64 = 6;
const TR_BARRIER: u64 = 7;
const TR_START: u64 = 8;
const TR_EXIT: u64 = 9;

fn lane_code(l: Lane) -> u64 {
    match l {
        Lane::Main => 0,
        Lane::Helper => 1,
    }
}

struct Core {
    id: usize,
    size: usize,
    plan: FaultPlan,
    stall_rank: Option<usize>,
    state: Mutex<State>,
    cv: Condvar,
}

static NEXT_SIM_ID: AtomicUsize = AtomicUsize::new(1);

thread_local! {
    /// (sim id, rank, lane) of the simulation this OS thread registered
    /// with, if any. The id disambiguates concurrent simulations in one
    /// test process.
    static SIM_IDENT: Cell<Option<(usize, usize, Lane)>> = const { Cell::new(None) };
}

impl Core {
    /// Locks ignoring mutex poisoning: a panicking thread (sim poison)
    /// must not cascade into `PoisonError` panics elsewhere.
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn ident(&self) -> Option<(usize, Lane)> {
        SIM_IDENT
            .with(|c| c.get())
            .and_then(|(id, r, l)| (id == self.id).then_some((r, l)))
    }

    fn trace(st: &mut State, words: &[u64]) {
        // FNV-1a over the event words.
        let mut h = st.trace_hash;
        for w in words {
            for b in w.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01B3);
            }
        }
        st.trace_hash = h;
        st.trace_len += 1;
    }

    fn check_poison(st: &State) {
        if let Some(r) = &st.poisoned {
            panic!("sim aborted: {r}");
        }
    }

    fn poison(&self, st: &mut State, reason: String) {
        if st.poisoned.is_none() {
            st.poisoned = Some(reason);
        }
        self.cv.notify_all();
    }

    fn is_stalled(&self, rank: usize, now: u64) -> Option<u64> {
        let s = self.plan.stall?;
        (self.stall_rank == Some(rank) && s.from_ns <= now && now < s.until_ns)
            .then_some(s.factor.max(1))
    }

    /// Grants the token to the next runnable thread, advancing virtual
    /// time when nothing is runnable. Poisons the sim on deadlock or
    /// virtual-budget exhaustion. The caller must already have recorded
    /// its own new state (Runnable to stay a candidate, or a blocked
    /// variant).
    fn reschedule(&self, st: &mut State) {
        st.running = None;
        loop {
            if st.poisoned.is_some() {
                return;
            }
            let runnable: Vec<(usize, Lane)> = st
                .threads
                .iter()
                .filter(|(_, s)| matches!(s, ThreadState::Runnable))
                .map(|(k, _)| *k)
                .collect();
            if !runnable.is_empty() {
                let idx = if runnable.len() == 1 {
                    0
                } else {
                    st.rng.range(0, runnable.len() as u64) as usize
                };
                let chosen = runnable[idx];
                st.running = Some(chosen);
                let now = st.now;
                Self::trace(st, &[TR_SCHED, chosen.0 as u64, lane_code(chosen.1), now]);
                self.cv.notify_all();
                return;
            }
            if st.threads.is_empty() {
                // Run complete: every thread exited.
                return;
            }
            if !self.advance_time(st) {
                let dump: Vec<String> = st
                    .threads
                    .iter()
                    .map(|((r, l), s)| format!("r{r}/{l:?}:{s:?}"))
                    .collect();
                self.poison(
                    st,
                    format!(
                        "deadlock at t={}ns: no runnable thread, no pending event; threads: [{}]",
                        st.now,
                        dump.join(", ")
                    ),
                );
                return;
            }
            if st.now > self.plan.max_virtual_ns {
                self.poison(
                    st,
                    format!(
                        "virtual-time budget exceeded ({} ns > {} ns): livelock or lost work",
                        st.now, self.plan.max_virtual_ns
                    ),
                );
                return;
            }
        }
    }

    /// Jumps the clock to the next delivery or pause deadline and applies
    /// everything due. Returns `false` when there is nothing to wait for.
    fn advance_time(&self, st: &mut State) -> bool {
        let t_ev = st.events.peek_time();
        let t_pause = st
            .threads
            .values()
            .filter_map(|s| match s {
                ThreadState::Pause { deadline } | ThreadState::Compute { deadline } => {
                    Some(*deadline)
                }
                _ => None,
            })
            .min();
        let target = match (t_ev, t_pause) {
            (None, None) => return false,
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (Some(a), Some(b)) => a.min(b),
        };
        st.now = st.now.max(target);
        while st.events.peek_time().is_some_and(|t| t <= st.now) {
            let (_, d) = st.events.pop().expect("peeked event");
            Self::deliver(st, d);
        }
        for s in st.threads.values_mut() {
            if let ThreadState::Pause { deadline } | ThreadState::Compute { deadline } = s {
                if *deadline <= st.now {
                    *s = ThreadState::Runnable;
                }
            }
        }
        true
    }

    /// Puts a message in its destination mailbox and wakes that rank's
    /// receive- or pause-blocked threads.
    fn deliver(st: &mut State, d: Deliver) {
        let now = st.now;
        Self::trace(
            st,
            &[TR_DELIVER, d.dest as u64, d.msg.src as u64, d.msg.tag, now],
        );
        st.mailboxes[d.dest].push_back(d.msg);
        for ((r, _), s) in st.threads.iter_mut() {
            if *r == d.dest && matches!(s, ThreadState::Recv | ThreadState::Pause { .. }) {
                *s = ThreadState::Runnable;
            }
        }
    }

    /// Blocks the calling OS thread until it holds the schedule token.
    fn wait_token(&self, mut st: MutexGuard<'_, State>, me: (usize, Lane)) {
        loop {
            Self::check_poison(&st);
            if st.running == Some(me) {
                return;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// A scheduling yield point: give every runnable thread a chance to be
    /// scheduled before the caller proceeds. No-op for unregistered
    /// threads (e.g. the test main thread touching a window).
    fn yield_now(&self) {
        let Some(me) = self.ident() else { return };
        let mut st = self.lock();
        Self::check_poison(&st);
        self.reschedule(&mut st);
        self.wait_token(st, me);
    }
}

/// The seeded fault-injecting transport. Create one per simulated run and
/// hand it to [`crate::comm::run_with`]; inspect
/// [`SimTransport::fingerprint`] afterwards to compare event traces
/// across replays.
#[derive(Clone)]
pub struct SimTransport {
    core: Arc<Core>,
}

impl SimTransport {
    /// Creates a fabric for `size` ranks governed by `plan`.
    pub fn new(size: usize, plan: FaultPlan) -> Self {
        assert!(size >= 1);
        let stall_rank = plan.stall.map(|s| (s.victim_salt % size as u64) as usize);
        let rng = DetRng::new(plan.seed);
        SimTransport {
            core: Arc::new(Core {
                id: NEXT_SIM_ID.fetch_add(1, Ordering::Relaxed),
                size,
                plan,
                stall_rank,
                state: Mutex::new(State {
                    now: 0,
                    rng,
                    events: EventQueue::new(),
                    threads: BTreeMap::new(),
                    registered: BTreeSet::new(),
                    running: None,
                    gate_open: false,
                    started_mains: 0,
                    mailboxes: (0..size).map(|_| VecDeque::new()).collect(),
                    barrier_gen: 0,
                    barrier_arrived: 0,
                    chan_drops: BTreeMap::new(),
                    poisoned: None,
                    trace_hash: 0xCBF2_9CE4_8422_2325, // FNV offset basis
                    trace_len: 0,
                }),
                cv: Condvar::new(),
            }),
        }
    }

    /// (hash, event count) of everything that happened so far — two runs
    /// of the same seed must report identical fingerprints.
    pub fn fingerprint(&self) -> (u64, u64) {
        let st = self.core.lock();
        (st.trace_hash, st.trace_len)
    }

    /// Current virtual time in nanoseconds.
    pub fn virtual_now_ns(&self) -> u64 {
        self.core.lock().now
    }

    /// The rank stalled by this plan, if any.
    pub fn stalled_rank(&self) -> Option<usize> {
        self.core.stall_rank
    }
}

impl Transport for SimTransport {
    fn size(&self) -> usize {
        self.core.size
    }

    fn now(&self) -> Duration {
        Duration::from_nanos(self.core.lock().now)
    }

    /// Virtual time: wall-clock pool workers would race the simulated
    /// schedule and break replay determinism, so pools must run inline.
    fn supports_worker_threads(&self) -> bool {
        false
    }

    fn send(&self, src: usize, dest: usize, tag: u64, payload: Payload) {
        let core = &self.core;
        let me = core.ident();
        let mut st = core.lock();
        Core::check_poison(&st);
        let plan = &core.plan;
        let faultable = payload.is_cloneable();

        // Drop? Only protocol (cloneable) messages, and never more than
        // max_consecutive_drops in a row on one channel (fair-lossy link).
        let mut dropped = false;
        if faultable && plan.drop_p > 0.0 {
            let key = (src, dest, tag);
            let count = *st.chan_drops.entry(key).or_insert(0);
            let cap_ok = count < plan.max_consecutive_drops;
            if cap_ok && st.rng.chance(plan.drop_p) {
                st.chan_drops.insert(key, count + 1);
                dropped = true;
                let now = st.now;
                Core::trace(&mut st, &[TR_DROP, src as u64, dest as u64, tag, now]);
            } else {
                st.chan_drops.insert(key, 0);
            }
        }

        if !dropped {
            let mut latency = plan.min_latency_ns + st.rng.range(0, plan.jitter_ns + 1);
            if st.rng.chance(plan.heavy_delay_p) {
                latency = latency.saturating_mul(plan.heavy_factor.max(1));
            }
            if let Some(f) = core.is_stalled(src, st.now) {
                latency = latency.saturating_mul(f);
            }
            let deliver_at = st.now + latency.max(1);

            // Duplicate? Schedule an independent second delivery.
            if faultable && st.rng.chance(plan.dup_p) {
                if let Some(copy) = payload.try_clone() {
                    let extra = plan.min_latency_ns + st.rng.range(0, plan.jitter_ns + 1);
                    let dup_at = st.now + extra.max(1);
                    Core::trace(&mut st, &[TR_DUP, src as u64, dest as u64, tag, dup_at]);
                    st.events.push(
                        dup_at,
                        Deliver {
                            dest,
                            msg: RawMsg {
                                src,
                                tag,
                                payload: copy.into_value(),
                            },
                        },
                    );
                }
            }

            Core::trace(
                &mut st,
                &[TR_SEND, src as u64, dest as u64, tag, deliver_at],
            );
            st.events.push(
                deliver_at,
                Deliver {
                    dest,
                    msg: RawMsg {
                        src,
                        tag,
                        payload: payload.into_value(),
                    },
                },
            );
        }

        if let Some(me) = me {
            core.reschedule(&mut st);
            core.wait_token(st, me);
        }
    }

    fn try_poll(&self, rank: usize) -> Option<RawMsg> {
        self.core.yield_now();
        let mut st = self.core.lock();
        Core::check_poison(&st);
        let m = st.mailboxes[rank].pop_front();
        if let Some(msg) = &m {
            let words = [TR_RECV, rank as u64, msg.src as u64, msg.tag, st.now];
            Core::trace(&mut st, &words);
        }
        m
    }

    fn recv_next(&self, rank: usize) -> RawMsg {
        let core = &self.core;
        let me = core
            .ident()
            .expect("recv_next on SimTransport from an unregistered thread");
        let mut st = core.lock();
        loop {
            Core::check_poison(&st);
            if let Some(msg) = st.mailboxes[rank].pop_front() {
                let words = [TR_RECV, rank as u64, msg.src as u64, msg.tag, st.now];
                Core::trace(&mut st, &words);
                return msg;
            }
            *st.threads.get_mut(&me).expect("registered thread") = ThreadState::Recv;
            core.reschedule(&mut st);
            loop {
                Core::check_poison(&st);
                if st.running == Some(me) {
                    break;
                }
                st = core.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    fn pause(&self, rank: usize, dur: Duration) {
        let core = &self.core;
        let me = core
            .ident()
            .expect("pause on SimTransport from an unregistered thread");
        let mut st = core.lock();
        Core::check_poison(&st);
        let mut d = (dur.as_nanos() as u64).max(1);
        if let Some(f) = core.is_stalled(rank, st.now) {
            d = d.saturating_mul(f);
        }
        let deadline = st.now + d;
        *st.threads.get_mut(&me).expect("registered thread") = ThreadState::Pause { deadline };
        core.reschedule(&mut st);
        core.wait_token(st, me);
    }

    fn advance(&self, rank: usize, dur: Duration) {
        let core = &self.core;
        let Some(me) = core.ident() else { return };
        let mut st = core.lock();
        Core::check_poison(&st);
        let mut d = (dur.as_nanos() as u64).max(1);
        // A stalled rank computes slowly too (a slow node, not just a
        // slow link).
        if let Some(f) = core.is_stalled(rank, st.now) {
            d = d.saturating_mul(f);
        }
        let deadline = st.now + d;
        *st.threads.get_mut(&me).expect("registered thread") = ThreadState::Compute { deadline };
        core.reschedule(&mut st);
        core.wait_token(st, me);
    }

    fn notify(&self, rank: usize) {
        let core = &self.core;
        let me = core.ident();
        let mut st = core.lock();
        Core::check_poison(&st);
        for ((r, _), s) in st.threads.iter_mut() {
            if *r == rank && matches!(s, ThreadState::Pause { .. }) {
                *s = ThreadState::Runnable;
            }
        }
        if let Some(me) = me {
            core.reschedule(&mut st);
            core.wait_token(st, me);
        }
    }

    fn barrier(&self, rank: usize) {
        let core = &self.core;
        let me = core
            .ident()
            .expect("barrier on SimTransport from an unregistered thread");
        let mut st = core.lock();
        Core::check_poison(&st);
        let gen = st.barrier_gen;
        st.barrier_arrived += 1;
        let now = st.now;
        Core::trace(&mut st, &[TR_BARRIER, rank as u64, gen, now]);
        if st.barrier_arrived == core.size {
            // Last arrival releases everyone (including itself) and lets
            // the scheduler pick who proceeds first.
            st.barrier_arrived = 0;
            st.barrier_gen += 1;
            for s in st.threads.values_mut() {
                if matches!(s, ThreadState::Barrier { gen: g } if *g == gen) {
                    *s = ThreadState::Runnable;
                }
            }
        } else {
            *st.threads.get_mut(&me).expect("registered thread") = ThreadState::Barrier { gen };
        }
        core.reschedule(&mut st);
        core.wait_token(st, me);
    }

    fn window(&self, len: usize) -> Window {
        Window::with_hook(
            len,
            Arc::new(SimHook {
                core: self.core.clone(),
                hist: Mutex::new((0..len).map(|_| VecDeque::new()).collect()),
            }),
        )
    }

    fn thread_start(&self, rank: usize, lane: Lane) {
        let core = &self.core;
        SIM_IDENT.with(|c| c.set(Some((core.id, rank, lane))));
        let me = (rank, lane);
        let mut st = core.lock();
        Core::check_poison(&st);
        st.threads.insert(me, ThreadState::Runnable);
        st.registered.insert(me);
        if lane == Lane::Main {
            st.started_mains += 1;
        }
        let now = st.now;
        Core::trace(&mut st, &[TR_START, rank as u64, lane_code(lane), now]);
        core.cv.notify_all(); // wake await_thread / gate watchers
        if !st.gate_open && st.started_mains == core.size {
            st.gate_open = true;
            core.reschedule(&mut st);
        }
        core.wait_token(st, me);
    }

    fn thread_exit(&self, rank: usize, lane: Lane) {
        let core = &self.core;
        let me = (rank, lane);
        let mut st = core.lock();
        st.threads.remove(&me);
        for s in st.threads.values_mut() {
            if matches!(s, ThreadState::Join { target } if *target == me) {
                *s = ThreadState::Runnable;
            }
        }
        let now = st.now;
        Core::trace(&mut st, &[TR_EXIT, rank as u64, lane_code(lane), now]);
        if st.running == Some(me) {
            core.reschedule(&mut st);
        }
        core.cv.notify_all();
        drop(st);
        SIM_IDENT.with(|c| c.set(None));
    }

    fn await_thread(&self, rank: usize, lane: Lane) {
        let core = &self.core;
        let mut st = core.lock();
        // The caller keeps the schedule token: registration does not need
        // it, so this cannot deadlock — it only orders the handshake.
        loop {
            Core::check_poison(&st);
            if st.registered.contains(&(rank, lane)) {
                return;
            }
            st = core.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn join_thread(&self, rank: usize, lane: Lane) {
        let core = &self.core;
        let target = (rank, lane);
        let me = core.ident();
        let mut st = core.lock();
        loop {
            Core::check_poison(&st);
            if st.registered.contains(&target) && !st.threads.contains_key(&target) {
                return; // target retired; caller keeps the token
            }
            match me {
                Some(me) => {
                    *st.threads.get_mut(&me).expect("registered thread") =
                        ThreadState::Join { target };
                    core.reschedule(&mut st);
                    loop {
                        Core::check_poison(&st);
                        if st.running == Some(me) {
                            break;
                        }
                        st = core.cv.wait(st).unwrap_or_else(|e| e.into_inner());
                    }
                }
                // An unregistered caller (driver thread) is outside the
                // schedule; a plain condvar wait cannot perturb it.
                None => st = core.cv.wait(st).unwrap_or_else(|e| e.into_inner()),
            }
        }
    }

    fn abort(&self) {
        let core = &self.core;
        let mut st = core.lock();
        core.poison(&mut st, "a simulated thread panicked".to_string());
    }
}

/// The RMA fault hook: yields on every window op and serves stale
/// estimates from recorded put history.
struct SimHook {
    core: Arc<Core>,
    /// Per-slot history of the last few `(virtual time, value)` puts.
    hist: Mutex<Vec<VecDeque<(u64, u64)>>>,
}

const HOOK_HISTORY: usize = 8;

impl WindowHook for SimHook {
    fn on_op(&self) {
        self.core.yield_now();
    }

    fn on_put(&self, offset: usize, value: u64) {
        let now = self.core.lock().now;
        let mut h = self.hist.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(q) = h.get_mut(offset) {
            q.push_back((now, value));
            if q.len() > HOOK_HISTORY {
                q.pop_front();
            }
        }
    }

    fn estimates(&self, current: &[u64]) -> Option<Vec<u64>> {
        let core = &self.core;
        if core.plan.stale_p <= 0.0 || core.ident().is_none() {
            return None;
        }
        let mut st = core.lock();
        Core::check_poison(&st);
        let h = self.hist.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = current.to_vec();
        let mut changed = false;
        for (i, slot) in out.iter_mut().enumerate() {
            if st.rng.chance(core.plan.stale_p) {
                if let Some(q) = h.get(i) {
                    if !q.is_empty() {
                        let k = st.rng.range(0, q.len() as u64) as usize;
                        *slot = q[k].1;
                        changed = true;
                    }
                }
            }
        }
        changed.then_some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::{run_with, Src};

    fn sim(size: usize, plan: FaultPlan) -> Arc<SimTransport> {
        Arc::new(SimTransport::new(size, plan))
    }

    #[test]
    fn reliable_ring_pass_completes() {
        let t = sim(4, FaultPlan::reliable(1));
        let results = run_with(t.clone(), |comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(next, 7, comm.rank() as u64);
            comm.recv::<u64>(Src::Rank(prev), 7).1
        });
        for (rank, v) in results.iter().enumerate() {
            assert_eq!(*v as usize, (rank + 3) % 4);
        }
        assert!(t.virtual_now_ns() > 0, "virtual time advanced");
    }

    #[test]
    fn same_seed_same_fingerprint() {
        let body = |comm: crate::comm::Comm| {
            // Opaque sends: exempt from drop/dup, but still subject to the
            // seeded scheduling, latency, and reordering being traced.
            for peer in 0..comm.size() {
                if peer != comm.rank() {
                    comm.send(peer, 1, comm.rank() as u64);
                }
            }
            let mut sum = 0u64;
            for _ in 0..comm.size() - 1 {
                sum += comm.recv::<u64>(Src::Any, 1).1;
            }
            comm.barrier();
            sum
        };
        let t1 = sim(3, FaultPlan::chaos(42));
        let r1 = run_with(t1.clone(), body);
        let t2 = sim(3, FaultPlan::chaos(42));
        let r2 = run_with(t2.clone(), body);
        assert_eq!(r1, r2, "same seed must produce identical results");
        assert_eq!(
            t1.fingerprint(),
            t2.fingerprint(),
            "same seed must replay the identical event trace"
        );
        let t3 = sim(3, FaultPlan::chaos(43));
        run_with(t3.clone(), body);
        assert_ne!(t1.fingerprint(), t3.fingerprint());
    }

    #[test]
    fn pause_consumes_virtual_time() {
        let t = sim(1, FaultPlan::reliable(5));
        run_with(t.clone(), |comm| {
            comm.pause(Duration::from_millis(3));
        });
        assert!(t.virtual_now_ns() >= 3_000_000);
    }

    #[test]
    fn deadlock_is_detected_not_hung() {
        let t = sim(2, FaultPlan::reliable(9));
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_with(t, |comm| {
                if comm.rank() == 0 {
                    // Rank 0 waits for a message nobody sends.
                    comm.recv::<u64>(Src::Any, 99);
                }
            })
        }));
        let err = out.expect_err("deadlock must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "rank panicked".into());
        assert!(
            msg.contains("deadlock") || msg.contains("rank panicked"),
            "unexpected panic: {msg}"
        );
    }

    #[test]
    fn virtual_budget_catches_livelock() {
        let mut plan = FaultPlan::reliable(3);
        plan.max_virtual_ns = 2_000_000; // 2ms budget
        let t = sim(1, plan);
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_with(t, |comm| loop {
                comm.pause(Duration::from_millis(1));
            })
        }));
        assert!(out.is_err(), "budget exhaustion must panic");
    }

    #[test]
    fn dropped_messages_respect_fair_lossy_cap() {
        let mut plan = FaultPlan::reliable(77);
        plan.drop_p = 1.0; // drop everything the cap allows
        plan.max_consecutive_drops = 3;
        let t = sim(2, plan);
        let results = run_with(t, |comm| {
            if comm.rank() == 0 {
                // 8 sends on one channel: with p=1 and cap 3, exactly every
                // 4th message gets through.
                for i in 0..8u64 {
                    comm.send_cloneable(1, 5, i);
                }
                comm.barrier();
                0
            } else {
                let a = comm.recv::<u64>(Src::Rank(0), 5).1;
                let b = comm.recv::<u64>(Src::Rank(0), 5).1;
                comm.barrier();
                a.min(b) * 100 + a.max(b)
            }
        });
        // Messages 3 and 7 (0-indexed) survive; jitter may reorder them.
        assert_eq!(results[1], 307);
    }

    #[test]
    fn duplication_delivers_twice() {
        let mut plan = FaultPlan::reliable(11);
        plan.dup_p = 1.0;
        let t = sim(2, plan);
        let results = run_with(t, |comm| {
            if comm.rank() == 0 {
                comm.send_cloneable(1, 2, 5u64);
                comm.barrier();
                0
            } else {
                let a = comm.recv::<u64>(Src::Rank(0), 2).1;
                let b = comm.recv::<u64>(Src::Rank(0), 2).1;
                comm.barrier();
                a + b
            }
        });
        assert_eq!(results[1], 10, "duplicated message arrives twice");
    }

    #[test]
    fn opaque_payloads_are_never_dropped_or_duplicated() {
        let mut plan = FaultPlan::reliable(13);
        plan.drop_p = 1.0;
        plan.dup_p = 1.0;
        plan.max_consecutive_drops = 100;
        let t = sim(2, plan);
        let results = run_with(t, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 3, 9u64); // opaque: must arrive exactly once
                comm.barrier();
                0
            } else {
                let v = comm.recv::<u64>(Src::Rank(0), 3).1;
                assert!(comm.try_recv::<u64>(Src::Any, 3).is_none());
                comm.barrier();
                v
            }
        });
        assert_eq!(results[1], 9);
    }

    #[test]
    fn window_hook_serves_stale_estimates() {
        let mut plan = FaultPlan::reliable(21);
        plan.stale_p = 1.0; // every estimate read is stale when history exists
        let t = sim(1, plan);
        let w = t.window(2);
        let w2 = w.clone();
        let saw_stale = run_with(t, move |comm| {
            w2.put(0, 10);
            w2.put(0, 20);
            w2.put(0, 30);
            comm.pause(Duration::from_micros(10));
            // With stale_p = 1 the read resolves to *some* recorded value,
            // possibly an old one.
            let v = w2.get_all()[0];
            assert!([10, 20, 30].contains(&v), "stale value from history: {v}");
            v != 30
        });
        // Exact staleness draw depends on the seeded history pick; either
        // way single-slot counter reads stay exact:
        assert_eq!(w.get(0), 30);
        let _ = saw_stale;
    }
}
