//! Dynamic load balancing (paper §II.F and §III).
//!
//! Each rank runs **two threads**: a *mesher* that drains a priority queue
//! of subdomains (largest estimated cost first — small subdomains are kept
//! back for aggressive balancing near termination) and a *communicator*
//! that (a) periodically publishes the rank's remaining work estimate to
//! the RMA window, (b) requests work from the most-loaded rank when the
//! local estimate falls below a threshold, and (c) serves incoming work
//! requests from its own queue. Termination is detected through a global
//! completed-items counter accumulated on the window.

use crate::comm::{Comm, Src};
use crate::window::Window;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A transferable unit of meshing work.
pub trait WorkItem: Send + 'static {
    /// Estimated processing cost (e.g. expected triangle count).
    fn cost(&self) -> u64;
}

/// Priority-queue entry ordered by cost (largest first).
struct QueueItem<W> {
    cost: u64,
    seq: u64,
    item: W,
}

impl<W> PartialEq for QueueItem<W> {
    fn eq(&self, other: &Self) -> bool {
        self.cost == other.cost && self.seq == other.seq
    }
}
impl<W> Eq for QueueItem<W> {}
impl<W> PartialOrd for QueueItem<W> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for QueueItem<W> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.cost
            .cmp(&other.cost)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The shared work queue of one rank. In *dynamic* workloads the queue
/// carries a created-items counter on the RMA window so distributed
/// termination detection ("all created items completed") works while
/// tasks spawn follow-up tasks on any rank.
pub struct WorkQueue<W> {
    heap: Mutex<(BinaryHeap<QueueItem<W>>, u64)>,
    counter: Option<(Window, usize)>,
}

impl<W: WorkItem> WorkQueue<W> {
    /// Creates a queue holding `items`.
    pub fn new(items: Vec<W>) -> Self {
        Self::build(items, None)
    }

    /// Creates a queue whose pushes (and these initial items) bump the
    /// created-items counter at `window[slot]` — required by
    /// [`run_rank_dynamic`].
    pub fn with_counter(items: Vec<W>, window: Window, slot: usize) -> Self {
        Self::build(items, Some((window, slot)))
    }

    fn build(items: Vec<W>, counter: Option<(Window, usize)>) -> Self {
        if let Some((w, slot)) = &counter {
            w.fetch_add(*slot, items.len() as u64);
        }
        let mut heap = BinaryHeap::with_capacity(items.len());
        for (seq, item) in items.into_iter().enumerate() {
            heap.push(QueueItem {
                cost: item.cost(),
                seq: seq as u64,
                item,
            });
        }
        WorkQueue {
            heap: Mutex::new((heap, 1 << 32)),
            counter,
        }
    }

    /// Pushes an item (bumping the created counter in dynamic mode).
    pub fn push(&self, item: W) {
        if let Some((w, slot)) = &self.counter {
            w.fetch_add(*slot, 1);
        }
        let mut g = self.heap.lock().unwrap();
        let seq = g.1;
        g.1 += 1;
        g.0.push(QueueItem {
            cost: item.cost(),
            seq,
            item,
        });
    }

    /// Pushes without counting: for items *transferred* between ranks
    /// (they were already counted where they were created).
    fn push_transferred(&self, item: W) {
        let mut g = self.heap.lock().unwrap();
        let seq = g.1;
        g.1 += 1;
        g.0.push(QueueItem {
            cost: item.cost(),
            seq,
            item,
        });
    }

    /// Pops the most expensive item.
    pub fn pop(&self) -> Option<W> {
        self.heap.lock().unwrap().0.pop().map(|q| q.item)
    }

    /// Total remaining cost.
    pub fn load(&self) -> u64 {
        self.heap.lock().unwrap().0.iter().map(|q| q.cost).sum()
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.heap.lock().unwrap().0.len()
    }

    /// `true` when no work is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Balancer tuning.
#[derive(Debug, Clone, Copy)]
pub struct BalancerConfig {
    /// Request work when the local load estimate falls below this.
    pub threshold: u64,
    /// Communicator polling interval.
    pub poll: Duration,
}

impl Default for BalancerConfig {
    fn default() -> Self {
        BalancerConfig {
            threshold: 64,
            poll: Duration::from_micros(200),
        }
    }
}

/// Per-rank balancing statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RankStats {
    /// Items this rank processed.
    pub processed: usize,
    /// Work requests sent.
    pub requests_sent: usize,
    /// Items received from other ranks.
    pub items_received: usize,
    /// Items donated to other ranks.
    pub items_donated: usize,
    /// Requests denied by this rank (insufficient work to share).
    pub denies: usize,
}

/// Communicator-to-communicator protocol.
enum Msg<W> {
    /// Please send me work.
    Request,
    /// Here is a work item.
    Work(W),
    /// I have nothing to spare.
    Deny,
}

const LB_TAG: u64 = 0x4C42; // "LB"

/// Runs the two-thread balanced processing loop on one rank. `process` is
/// the mesher body; it may push follow-up work into the queue it is given.
/// `total_window` must have `size + 1` slots: one load estimate per rank
/// plus the completed-items counter in the last slot. `total_items` is the
/// global number of items that will ever exist.
pub fn run_rank<W, F, R>(
    comm: &Comm,
    queue: Arc<WorkQueue<W>>,
    window: Window,
    total_items: u64,
    cfg: BalancerConfig,
    mut process: F,
) -> (Vec<R>, RankStats)
where
    W: WorkItem,
    F: FnMut(W, &WorkQueue<W>) -> R,
    R: Send,
{
    let rank = comm.rank();
    let size = comm.size();
    let done_slot = size;
    let shutdown = Arc::new(AtomicBool::new(false));
    let busy = Arc::new(AtomicBool::new(false));
    let stats = Arc::new(Mutex::new(RankStats::default()));

    let mut results = Vec::new();
    std::thread::scope(|scope| {
        // Communicator thread.
        let comm_queue = queue.clone();
        let comm_window = window.clone();
        let comm_shutdown = shutdown.clone();
        let comm_busy = busy.clone();
        let comm_stats = stats.clone();
        let communicator = scope.spawn(move || {
            let mut outstanding_request = false;
            loop {
                // Publish the current work estimate (MPI_Put).
                comm_window.put(rank, comm_queue.load());

                // Serve or consume protocol messages.
                while let Some((src, msg)) = comm.try_recv::<Msg<W>>(Src::Any, LB_TAG) {
                    match msg {
                        Msg::Request => {
                            // Donate the largest queued item; keep one in
                            // reserve only when the mesher is idle (its
                            // in-flight task is the reserve otherwise).
                            let reserve = if comm_busy.load(Ordering::Acquire) {
                                1
                            } else {
                                2
                            };
                            if comm_queue.len() >= reserve {
                                if let Some(item) = comm_queue.pop() {
                                    comm.send(src, LB_TAG, Msg::Work(item));
                                    comm_stats.lock().unwrap().items_donated += 1;
                                } else {
                                    comm.send(src, LB_TAG, Msg::<W>::Deny);
                                    comm_stats.lock().unwrap().denies += 1;
                                }
                            } else {
                                comm.send(src, LB_TAG, Msg::<W>::Deny);
                                comm_stats.lock().unwrap().denies += 1;
                            }
                        }
                        Msg::Work(item) => {
                            comm_queue.push_transferred(item);
                            outstanding_request = false;
                            comm_stats.lock().unwrap().items_received += 1;
                        }
                        Msg::Deny => {
                            outstanding_request = false;
                        }
                    }
                }

                // Global termination: all items processed.
                if comm_window.get(done_slot) >= total_items {
                    comm_shutdown.store(true, Ordering::Release);
                    return;
                }

                // Request work before the mesher runs dry (paper: "the
                // communicator thread requests additional work before the
                // mesher thread runs out of work").
                if !outstanding_request && comm_queue.load() < cfg.threshold {
                    if let Some(victim) = comm_window.argmax_excluding(rank, size) {
                        comm.send(victim, LB_TAG, Msg::<W>::Request);
                        outstanding_request = true;
                        comm_stats.lock().unwrap().requests_sent += 1;
                    }
                }
                std::thread::sleep(cfg.poll);
            }
        });

        // Mesher loop (this thread).
        loop {
            if let Some(item) = queue.pop() {
                busy.store(true, Ordering::Release);
                results.push(process(item, &queue));
                busy.store(false, Ordering::Release);
                stats.lock().unwrap().processed += 1;
                window.fetch_add(done_slot, 1);
            } else {
                if shutdown.load(Ordering::Acquire) {
                    break;
                }
                std::thread::sleep(Duration::from_micros(50));
            }
        }
        communicator.join().expect("communicator panicked");
    });
    // Keep this rank's endpoint alive until every communicator has exited:
    // a peer that observed the completion counter a poll-interval later
    // than us may still have a work request in flight to this rank.
    comm.barrier();
    let s = *stats.lock().unwrap();
    (results, s)
}

/// Dynamic-workload variant of [`run_rank`]: the total number of items is
/// unknown upfront because processing an item may push follow-up items on
/// any rank (the paper's recursive decomposition/decoupling, where
/// "subdomains are repeatedly decoupled and sent to other processes").
///
/// `window` must have `size + 2` slots: per-rank load estimates, then the
/// completed-items counter at `size`, then the created-items counter at
/// `size + 1`. The queue must be built with [`WorkQueue::with_counter`]
/// pointing at `size + 1`. Termination: `completed == created`, checked
/// only after the initial barrier so every rank's seed items are counted.
pub fn run_rank_dynamic<W, F, R>(
    comm: &Comm,
    queue: Arc<WorkQueue<W>>,
    window: Window,
    cfg: BalancerConfig,
    mut process: F,
) -> (Vec<R>, RankStats)
where
    W: WorkItem,
    F: FnMut(W, &WorkQueue<W>) -> R,
    R: Send,
{
    let rank = comm.rank();
    let size = comm.size();
    let done_slot = size;
    let created_slot = size + 1;
    assert!(window.len() >= size + 2, "dynamic mode needs size+2 slots");
    // All seed items must be registered before anyone can observe
    // completed == created.
    comm.barrier();
    let shutdown = Arc::new(AtomicBool::new(false));
    let busy = Arc::new(AtomicBool::new(false));
    let stats = Arc::new(Mutex::new(RankStats::default()));

    let mut results = Vec::new();
    std::thread::scope(|scope| {
        let comm_queue = queue.clone();
        let comm_window = window.clone();
        let comm_shutdown = shutdown.clone();
        let comm_busy = busy.clone();
        let comm_stats = stats.clone();
        let communicator = scope.spawn(move || {
            let mut outstanding_request = false;
            loop {
                comm_window.put(rank, comm_queue.load());
                while let Some((src, msg)) = comm.try_recv::<Msg<W>>(Src::Any, LB_TAG) {
                    match msg {
                        Msg::Request => {
                            let reserve = if comm_busy.load(Ordering::Acquire) {
                                1
                            } else {
                                2
                            };
                            if comm_queue.len() >= reserve {
                                if let Some(item) = comm_queue.pop() {
                                    comm.send(src, LB_TAG, Msg::Work(item));
                                    comm_stats.lock().unwrap().items_donated += 1;
                                } else {
                                    comm.send(src, LB_TAG, Msg::<W>::Deny);
                                    comm_stats.lock().unwrap().denies += 1;
                                }
                            } else {
                                comm.send(src, LB_TAG, Msg::<W>::Deny);
                                comm_stats.lock().unwrap().denies += 1;
                            }
                        }
                        Msg::Work(item) => {
                            comm_queue.push_transferred(item);
                            outstanding_request = false;
                            comm_stats.lock().unwrap().items_received += 1;
                        }
                        Msg::Deny => {
                            outstanding_request = false;
                        }
                    }
                }
                // Termination: everything ever created has completed.
                // Read `created` first: a stale-low `created` with a
                // fresh-high `done` could otherwise fake completion.
                let created = comm_window.get(created_slot);
                let done = comm_window.get(done_slot);
                if created > 0 && done >= created {
                    comm_shutdown.store(true, Ordering::Release);
                    return;
                }
                if !outstanding_request && comm_queue.load() < cfg.threshold {
                    if let Some(victim) = comm_window.argmax_excluding(rank, size) {
                        comm.send(victim, LB_TAG, Msg::<W>::Request);
                        outstanding_request = true;
                        comm_stats.lock().unwrap().requests_sent += 1;
                    }
                }
                std::thread::sleep(cfg.poll);
            }
        });

        loop {
            if let Some(item) = queue.pop() {
                busy.store(true, Ordering::Release);
                results.push(process(item, &queue));
                busy.store(false, Ordering::Release);
                stats.lock().unwrap().processed += 1;
                window.fetch_add(done_slot, 1);
            } else {
                if shutdown.load(Ordering::Acquire) {
                    break;
                }
                std::thread::sleep(Duration::from_micros(50));
            }
        }
        communicator.join().expect("communicator panicked");
    });
    comm.barrier();
    let s = *stats.lock().unwrap();
    (results, s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::run;

    #[derive(Debug)]
    struct Job {
        id: usize,
        work: u64,
    }
    impl WorkItem for Job {
        fn cost(&self) -> u64 {
            self.work
        }
    }

    fn spin(units: u64) {
        // Wall-clock work that the optimizer cannot remove, so steals have
        // time to happen regardless of build profile.
        std::thread::sleep(Duration::from_micros(units * 30));
    }

    #[test]
    fn priority_queue_pops_largest_first() {
        let q = WorkQueue::new(vec![
            Job { id: 0, work: 5 },
            Job { id: 1, work: 50 },
            Job { id: 2, work: 20 },
        ]);
        assert_eq!(q.load(), 75);
        assert_eq!(q.pop().unwrap().id, 1);
        assert_eq!(q.pop().unwrap().id, 2);
        assert_eq!(q.pop().unwrap().id, 0);
        assert!(q.pop().is_none());
    }

    #[test]
    fn fifo_among_equal_costs() {
        let q = WorkQueue::new(vec![
            Job { id: 0, work: 10 },
            Job { id: 1, work: 10 },
            Job { id: 2, work: 10 },
        ]);
        assert_eq!(q.pop().unwrap().id, 0);
        assert_eq!(q.pop().unwrap().id, 1);
        assert_eq!(q.pop().unwrap().id, 2);
    }

    #[test]
    fn skewed_work_is_balanced_across_ranks() {
        const RANKS: usize = 4;
        const ITEMS: usize = 40;
        let window = Window::new(RANKS + 1);
        let results = run(RANKS, |comm| {
            // All work starts on rank 0.
            let initial: Vec<Job> = if comm.rank() == 0 {
                (0..ITEMS).map(|id| Job { id, work: 20 }).collect()
            } else {
                Vec::new()
            };
            let queue = Arc::new(WorkQueue::new(initial));
            let (processed, stats) = run_rank(
                &comm,
                queue,
                window.clone(),
                ITEMS as u64,
                BalancerConfig {
                    threshold: 100,
                    poll: Duration::from_micros(100),
                },
                |job, _q| {
                    spin(job.work);
                    job.id
                },
            );
            (processed, stats)
        });
        // Every item processed exactly once.
        let mut all: Vec<usize> = results.iter().flat_map(|(ids, _)| ids.clone()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..ITEMS).collect::<Vec<_>>());
        // Stealing actually happened.
        let received: usize = results.iter().map(|(_, s)| s.items_received).sum();
        assert!(received > 0, "no work was stolen");
        let donated: usize = results.iter().map(|(_, s)| s.items_donated).sum();
        assert_eq!(received, donated);
    }

    #[test]
    fn dynamically_created_work_is_processed() {
        const RANKS: usize = 2;
        // 4 seed items, each spawning 3 children: 16 total.
        let window = Window::new(RANKS + 1);
        let results = run(RANKS, |comm| {
            let initial: Vec<Job> = if comm.rank() == 0 {
                (0..4).map(|id| Job { id, work: 10 }).collect()
            } else {
                Vec::new()
            };
            let queue = Arc::new(WorkQueue::new(initial));
            let (processed, _stats) = run_rank(
                &comm,
                queue,
                window.clone(),
                16,
                BalancerConfig::default(),
                |job, q| {
                    spin(job.work);
                    if job.id < 4 {
                        for k in 0..3 {
                            q.push(Job {
                                id: 4 + job.id * 3 + k,
                                work: 5,
                            });
                        }
                    }
                    job.id
                },
            );
            processed
        });
        let mut all: Vec<usize> = results.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn single_rank_degenerates_to_sequential() {
        let window = Window::new(2);
        let results = run(1, |comm| {
            let queue = Arc::new(WorkQueue::new(
                (0..10).map(|id| Job { id, work: 1 }).collect(),
            ));
            run_rank(
                &comm,
                queue,
                window.clone(),
                10,
                BalancerConfig::default(),
                |job, _| job.id,
            )
            .0
        });
        assert_eq!(results[0].len(), 10);
    }
}
