//! Dynamic load balancing (paper §II.F and §III).
//!
//! Each rank runs **two threads**: a *mesher* that drains a priority queue
//! of subdomains (largest estimated cost first — small subdomains are kept
//! back for aggressive balancing near termination) and a *communicator*
//! that (a) periodically publishes the rank's remaining work estimate to
//! the RMA window, (b) requests work from the most-loaded rank when the
//! local estimate falls below a threshold, and (c) serves incoming work
//! requests from its own queue. Termination is detected through a global
//! completed-items counter accumulated on the window.
//!
//! ## Fault tolerance
//!
//! The default [`Protocol::Hardened`] wire protocol survives the full
//! fault model of [`crate::simfault::SimTransport`] — delayed, reordered,
//! duplicated, and (fair-lossy) dropped messages, stalled communicators,
//! stale RMA estimates — without losing or double-processing work:
//!
//! - every request carries a **`req_id`**; donors remember their answer
//!   per id, so a retried or duplicated request elicits the *same* reply
//!   instead of a second donation;
//! - every donation carries a **`transfer_id`**; receivers track seen ids
//!   and discard (but re-acknowledge) duplicates, making transfer delivery
//!   idempotent;
//! - donors keep each donated item **in flight** (a clone) and resend it
//!   with capped exponential backoff until acknowledged — a dropped
//!   transfer is retried, never lost;
//! - requesters time out and retry with backoff, eventually re-targeting
//!   a different victim; all timeouts are measured on the transport clock
//!   ([`crate::comm::Comm::now`]), so the same logic runs under virtual
//!   time.
//!
//! [`Protocol::Naive`] preserves the original fire-and-forget protocol
//! (no ids, no acks, no retries). It is kept for the regression tests
//! that demonstrate seeds under which the naive balancer loses work or
//! processes it twice, while the hardened one completes bit-identically.
//!
//! Idle threads never busy-sleep: both loops park in
//! [`crate::comm::Comm::pause`], which wakes early on incoming traffic or
//! an explicit [`crate::comm::Comm::wake`].

use crate::comm::{Comm, Src};
use crate::transport::Lane;
use crate::window::Window;
use adm_trace::{Tracer, Track};
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A transferable unit of meshing work. `Clone` is required so donors can
/// keep an in-flight copy for retransmission (and so the fault injector
/// may duplicate protocol messages in tests).
pub trait WorkItem: Send + Clone + 'static {
    /// Estimated processing cost (e.g. expected triangle count).
    fn cost(&self) -> u64;
}

/// Priority-queue entry ordered by cost (largest first).
struct QueueItem<W> {
    cost: u64,
    seq: u64,
    item: W,
}

impl<W> PartialEq for QueueItem<W> {
    fn eq(&self, other: &Self) -> bool {
        self.cost == other.cost && self.seq == other.seq
    }
}
impl<W> Eq for QueueItem<W> {}
impl<W> PartialOrd for QueueItem<W> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for QueueItem<W> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.cost
            .cmp(&other.cost)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The shared work queue of one rank. In *dynamic* workloads the queue
/// carries a created-items counter on the RMA window so distributed
/// termination detection ("all created items completed") works while
/// tasks spawn follow-up tasks on any rank.
pub struct WorkQueue<W> {
    heap: Mutex<(BinaryHeap<QueueItem<W>>, u64)>,
    counter: Option<(Window, usize)>,
}

impl<W: WorkItem> WorkQueue<W> {
    /// Creates a queue holding `items`.
    pub fn new(items: Vec<W>) -> Self {
        Self::build(items, None)
    }

    /// Creates a queue whose pushes (and these initial items) bump the
    /// created-items counter at `window[slot]` — required by
    /// [`run_rank_dynamic`].
    pub fn with_counter(items: Vec<W>, window: Window, slot: usize) -> Self {
        Self::build(items, Some((window, slot)))
    }

    fn build(items: Vec<W>, counter: Option<(Window, usize)>) -> Self {
        if let Some((w, slot)) = &counter {
            w.fetch_add(*slot, items.len() as u64);
        }
        let mut heap = BinaryHeap::with_capacity(items.len());
        for (seq, item) in items.into_iter().enumerate() {
            heap.push(QueueItem {
                cost: item.cost(),
                seq: seq as u64,
                item,
            });
        }
        WorkQueue {
            heap: Mutex::new((heap, 1 << 32)),
            counter,
        }
    }

    /// Pushes an item (bumping the created counter in dynamic mode).
    pub fn push(&self, item: W) {
        if let Some((w, slot)) = &self.counter {
            w.fetch_add(*slot, 1);
        }
        let mut g = self.heap.lock().unwrap();
        let seq = g.1;
        g.1 += 1;
        g.0.push(QueueItem {
            cost: item.cost(),
            seq,
            item,
        });
    }

    /// Pushes without counting: for items *transferred* between ranks
    /// (they were already counted where they were created).
    fn push_transferred(&self, item: W) {
        let mut g = self.heap.lock().unwrap();
        let seq = g.1;
        g.1 += 1;
        g.0.push(QueueItem {
            cost: item.cost(),
            seq,
            item,
        });
    }

    /// Pops the most expensive item.
    pub fn pop(&self) -> Option<W> {
        self.heap.lock().unwrap().0.pop().map(|q| q.item)
    }

    /// Total remaining cost.
    pub fn load(&self) -> u64 {
        self.heap.lock().unwrap().0.iter().map(|q| q.cost).sum()
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.heap.lock().unwrap().0.len()
    }

    /// `true` when no work is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Which wire protocol the communicators speak.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Protocol {
    /// Idempotent requests, acknowledged deduplicated transfers, bounded
    /// retry with backoff. Survives the simulated fault model.
    #[default]
    Hardened,
    /// The original fire-and-forget protocol (kept for regression tests
    /// demonstrating fault sensitivity). Loses work on drops and may
    /// double-process on duplication.
    Naive,
}

/// Balancer tuning.
#[derive(Debug, Clone, Copy)]
pub struct BalancerConfig {
    /// Request work when the local load estimate falls below this.
    pub threshold: u64,
    /// Communicator polling interval.
    pub poll: Duration,
    /// Wire protocol (see [`Protocol`]).
    pub protocol: Protocol,
    /// Base timeout before a work request is retried (doubles per retry).
    pub request_timeout: Duration,
    /// Retries before an unanswered request is abandoned (a later pass may
    /// target a different victim).
    pub max_request_retries: u32,
    /// Base timeout before an unacknowledged donation is resent (doubles
    /// per resend, capped; resends continue until acknowledged).
    pub resend_timeout: Duration,
}

impl Default for BalancerConfig {
    fn default() -> Self {
        BalancerConfig {
            threshold: 64,
            poll: Duration::from_micros(200),
            protocol: Protocol::Hardened,
            request_timeout: Duration::from_millis(5),
            max_request_retries: 8,
            resend_timeout: Duration::from_millis(5),
        }
    }
}

/// Per-rank balancing statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RankStats {
    /// Items this rank processed.
    pub processed: usize,
    /// Work requests sent (excluding retries).
    pub requests_sent: usize,
    /// Items received from other ranks (first deliveries only).
    pub items_received: usize,
    /// Items donated to other ranks (first sends only).
    pub items_donated: usize,
    /// Requests denied by this rank (insufficient work to share).
    pub denies: usize,
    /// Timed-out work requests that were retransmitted.
    pub request_retries: usize,
    /// Unacknowledged donations that were retransmitted.
    pub work_resends: usize,
    /// Duplicate transfers discarded by the dedup filter.
    pub dup_transfers_discarded: usize,
    /// Duplicate requests answered idempotently from the answer cache.
    pub dup_requests_served: usize,
}

/// Communicator-to-communicator protocol. All variants travel as
/// *cloneable* payloads, opting in to drop/duplication fault injection —
/// the hardened protocol is what makes that safe.
#[derive(Clone)]
enum Msg<W> {
    /// Please send me work. `req_id` makes donor answers idempotent
    /// (naive mode sends 0 and ignores it).
    Request { req_id: u64 },
    /// Here is a work item (the answer to `req_id`). `transfer_id` keys
    /// receiver-side dedup and the donor's retransmission table.
    Work {
        transfer_id: u64,
        req_id: u64,
        item: W,
    },
    /// I have nothing to spare (the answer to `req_id`).
    Deny { req_id: u64 },
    /// Transfer received; the donor may drop its in-flight copy.
    Ack { transfer_id: u64 },
}

const LB_TAG: u64 = 0x4C42; // "LB"

/// How the communicators decide all work in the system is finished.
enum Termination {
    /// `done >= total` for a statically known item count.
    Static { total: u64 },
    /// `created > 0 && done >= created`, with the created-items counter at
    /// `created_slot` (items may spawn more items on any rank).
    Dynamic { created_slot: usize },
}

impl Termination {
    fn reached(&self, window: &Window, done_slot: usize) -> bool {
        match self {
            Termination::Static { total } => window.get(done_slot) >= *total,
            Termination::Dynamic { created_slot } => {
                // Read `created` first: a stale-low `created` with a
                // fresh-high `done` could otherwise fake completion.
                let created = window.get(*created_slot);
                let done = window.get(done_slot);
                created > 0 && done >= created
            }
        }
    }
}

/// An unanswered outbound work request.
struct PendingRequest {
    req_id: u64,
    victim: usize,
    sent_at: Duration,
    /// First transmission time, for the steal round-trip histogram
    /// (`sent_at` moves forward on every retry).
    first_sent: Duration,
    attempts: u32,
}

/// A donated item awaiting acknowledgment.
struct InFlight<W> {
    dest: usize,
    req_id: u64,
    item: W,
    last_sent: Duration,
    attempts: u32,
}

/// What this donor answered a given `req_id` with.
enum Answer {
    Work(u64),
    Deny,
}

fn backoff(base: Duration, attempts: u32) -> Duration {
    base * (1u32 << attempts.min(6))
}

/// The communicator-thread body (both protocols).
#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
fn communicator_loop<W: WorkItem>(
    comm: &Comm,
    queue: &WorkQueue<W>,
    window: &Window,
    termination: &Termination,
    cfg: &BalancerConfig,
    busy: &AtomicBool,
    shutdown: &AtomicBool,
    stats: &Mutex<RankStats>,
    trace: Option<&Tracer>,
) {
    let rank = comm.rank();
    let size = comm.size();
    let done_slot = size;
    let hardened = cfg.protocol == Protocol::Hardened;
    // Registry mirror of the RankStats counters, plus the queue-depth and
    // steal-round-trip histograms. All timestamps come from the transport
    // clock, so under simulation these are deterministic per seed.
    let bump = |name: &'static str| {
        if let Some(t) = trace {
            t.count(name, 1);
        }
    };

    let mut outstanding: Option<PendingRequest> = None;
    let mut next_req_seq: u64 = 0;
    let mut next_tid_seq: u64 = 0;
    // Donor-side state (hardened): answer cache for idempotent requests
    // and the retransmission table of unacknowledged donations. Bounded by
    // the number of requests a run generates.
    let mut answered: BTreeMap<u64, Answer> = BTreeMap::new();
    let mut in_flight: BTreeMap<u64, InFlight<W>> = BTreeMap::new();
    // Requester-side dedup of received transfers.
    let mut seen_transfers: BTreeSet<u64> = BTreeSet::new();

    let donate = |src: usize,
                  req_id: u64,
                  in_flight: &mut BTreeMap<u64, InFlight<W>>,
                  answered: &mut BTreeMap<u64, Answer>,
                  next_tid_seq: &mut u64| {
        // Donate the largest queued item; keep one in reserve only when
        // the mesher is idle (its in-flight task is the reserve otherwise).
        let reserve = if busy.load(Ordering::Acquire) { 1 } else { 2 };
        let item = if queue.len() >= reserve {
            queue.pop()
        } else {
            None
        };
        match item {
            Some(item) => {
                if hardened {
                    let transfer_id = ((rank as u64) << 40) | *next_tid_seq;
                    *next_tid_seq += 1;
                    comm.send_cloneable(
                        src,
                        LB_TAG,
                        Msg::Work {
                            transfer_id,
                            req_id,
                            item: item.clone(),
                        },
                    );
                    in_flight.insert(
                        transfer_id,
                        InFlight {
                            dest: src,
                            req_id,
                            item,
                            last_sent: comm.now(),
                            attempts: 1,
                        },
                    );
                    answered.insert(req_id, Answer::Work(transfer_id));
                } else {
                    comm.send_cloneable(
                        src,
                        LB_TAG,
                        Msg::Work {
                            transfer_id: 0,
                            req_id: 0,
                            item,
                        },
                    );
                }
                stats.lock().unwrap().items_donated += 1;
                bump("lb.items_donated");
            }
            None => {
                if hardened {
                    answered.insert(req_id, Answer::Deny);
                }
                comm.send_cloneable(src, LB_TAG, Msg::<W>::Deny { req_id });
                stats.lock().unwrap().denies += 1;
                bump("lb.denies");
            }
        }
    };

    loop {
        // Publish the current work estimate (MPI_Put).
        window.put(rank, queue.load());
        if let Some(t) = trace {
            t.observe("lb.queue_depth", queue.len() as u64);
        }

        // Serve or consume protocol messages.
        while let Some((src, msg)) = comm.try_recv::<Msg<W>>(Src::Any, LB_TAG) {
            match msg {
                Msg::Request { req_id } => {
                    if hardened {
                        match answered.get(&req_id) {
                            Some(Answer::Work(tid)) => {
                                // Duplicate/retried request we already
                                // answered with work: resend that same
                                // donation (idempotent), or deny if it was
                                // since acknowledged (the requester has it).
                                let tid = *tid;
                                if let Some(f) = in_flight.get_mut(&tid) {
                                    comm.send_cloneable(
                                        src,
                                        LB_TAG,
                                        Msg::Work {
                                            transfer_id: tid,
                                            req_id,
                                            item: f.item.clone(),
                                        },
                                    );
                                    f.last_sent = comm.now();
                                    f.attempts += 1;
                                    stats.lock().unwrap().work_resends += 1;
                                    bump("lb.work_resends");
                                } else {
                                    comm.send_cloneable(src, LB_TAG, Msg::<W>::Deny { req_id });
                                }
                                stats.lock().unwrap().dup_requests_served += 1;
                                bump("lb.dup_requests_served");
                            }
                            Some(Answer::Deny) => {
                                comm.send_cloneable(src, LB_TAG, Msg::<W>::Deny { req_id });
                                stats.lock().unwrap().dup_requests_served += 1;
                                bump("lb.dup_requests_served");
                            }
                            None => {
                                donate(
                                    src,
                                    req_id,
                                    &mut in_flight,
                                    &mut answered,
                                    &mut next_tid_seq,
                                );
                            }
                        }
                    } else {
                        donate(
                            src,
                            req_id,
                            &mut in_flight,
                            &mut answered,
                            &mut next_tid_seq,
                        );
                    }
                }
                Msg::Work {
                    transfer_id,
                    req_id,
                    item,
                } => {
                    if hardened {
                        // Always (re-)acknowledge: the donor stops
                        // resending only once an ack gets through.
                        comm.send_cloneable(src, LB_TAG, Msg::<W>::Ack { transfer_id });
                        if seen_transfers.contains(&transfer_id) {
                            stats.lock().unwrap().dup_transfers_discarded += 1;
                            bump("lb.dup_transfers_discarded");
                        } else {
                            seen_transfers.insert(transfer_id);
                            queue.push_transferred(item);
                            comm.wake(); // the mesher may be parked empty
                            stats.lock().unwrap().items_received += 1;
                            bump("lb.items_received");
                        }
                        if let Some(p) = outstanding.as_ref().filter(|p| p.req_id == req_id) {
                            // Steal round trip: first request transmission
                            // to first matching work delivery.
                            if let Some(t) = trace {
                                let rtt = comm.now().saturating_sub(p.first_sent);
                                t.observe("lb.steal_rtt_ns", rtt.as_nanos() as u64);
                            }
                            outstanding = None;
                        }
                    } else {
                        queue.push_transferred(item);
                        comm.wake();
                        outstanding = None;
                        stats.lock().unwrap().items_received += 1;
                        bump("lb.items_received");
                    }
                }
                Msg::Deny { req_id } => {
                    if hardened {
                        if outstanding.as_ref().is_some_and(|p| p.req_id == req_id) {
                            outstanding = None;
                        }
                    } else {
                        outstanding = None;
                    }
                }
                Msg::Ack { transfer_id } => {
                    // First donation was counted at first send; the ack
                    // just retires the retransmission entry.
                    in_flight.remove(&transfer_id);
                }
            }
        }

        // Global termination check.
        if termination.reached(window, done_slot) {
            shutdown.store(true, Ordering::Release);
            comm.wake(); // unpark the mesher so it observes shutdown
            return;
        }

        let now = comm.now();

        // Retry a timed-out request (hardened only).
        if hardened {
            let mut give_up = false;
            if let Some(p) = &mut outstanding {
                if now.saturating_sub(p.sent_at) > backoff(cfg.request_timeout, p.attempts - 1) {
                    if p.attempts > cfg.max_request_retries {
                        give_up = true;
                    } else {
                        comm.send_cloneable(
                            p.victim,
                            LB_TAG,
                            Msg::<W>::Request { req_id: p.req_id },
                        );
                        p.sent_at = now;
                        p.attempts += 1;
                        stats.lock().unwrap().request_retries += 1;
                        bump("lb.request_retries");
                    }
                }
            }
            if give_up {
                // Abandon this victim; the next pass below may pick a
                // different one. If the old request still produces work it
                // will be accepted (and deduplicated) regardless.
                outstanding = None;
            }

            // Resend unacknowledged donations with capped backoff. These
            // retry forever: the fair-lossy link guarantees delivery, and
            // giving up would lose the item.
            for (tid, f) in in_flight.iter_mut() {
                if now.saturating_sub(f.last_sent) > backoff(cfg.resend_timeout, f.attempts - 1) {
                    comm.send_cloneable(
                        f.dest,
                        LB_TAG,
                        Msg::Work {
                            transfer_id: *tid,
                            req_id: f.req_id,
                            item: f.item.clone(),
                        },
                    );
                    f.last_sent = now;
                    f.attempts += 1;
                    stats.lock().unwrap().work_resends += 1;
                    bump("lb.work_resends");
                }
            }
        }

        // Request work before the mesher runs dry (paper: "the
        // communicator thread requests additional work before the mesher
        // thread runs out of work").
        if outstanding.is_none() && queue.load() < cfg.threshold {
            if let Some(victim) = window.argmax_excluding(rank, size) {
                let req_id = ((rank as u64) << 40) | next_req_seq;
                next_req_seq += 1;
                comm.send_cloneable(victim, LB_TAG, Msg::<W>::Request { req_id });
                outstanding = Some(PendingRequest {
                    req_id,
                    victim,
                    sent_at: now,
                    first_sent: now,
                    attempts: 1,
                });
                stats.lock().unwrap().requests_sent += 1;
                bump("lb.requests_sent");
            }
        }

        // Park until the next poll tick, woken early by traffic.
        comm.pause(cfg.poll);
    }
}

/// Shared two-thread skeleton of [`run_rank`] / [`run_rank_dynamic`].
fn run_rank_inner<W, F, R>(
    comm: &Comm,
    queue: Arc<WorkQueue<W>>,
    window: Window,
    termination: Termination,
    cfg: BalancerConfig,
    trace: Option<Tracer>,
    mut process: F,
) -> (Vec<R>, RankStats)
where
    W: WorkItem,
    F: FnMut(W, &WorkQueue<W>) -> R,
    R: Send,
{
    let rank = comm.rank();
    let size = comm.size();
    let done_slot = size;
    let shutdown = AtomicBool::new(false);
    let busy = AtomicBool::new(false);
    let stats = Mutex::new(RankStats::default());
    if let Some(t) = &trace {
        t.name_track(Track::rank(rank), &format!("rank {rank} mesher"));
        t.name_track(Track::helper(rank), &format!("rank {rank} communicator"));
    }

    let mut results = Vec::new();
    std::thread::scope(|scope| {
        // Communicator thread (the rank's Helper lane). Registration is
        // handshaked through the transport so simulated schedules stay
        // deterministic; on panic the transport is poisoned so peers
        // unwind instead of hanging.
        let transport = comm.transport().clone();
        let (comm_r, queue_r, window_r, term_r, cfg_r) =
            (comm, &queue, &window, &termination, &cfg);
        let (busy_r, shutdown_r, stats_r, trace_r) = (&busy, &shutdown, &stats, &trace);
        let communicator = scope.spawn(move || {
            transport.thread_start(rank, Lane::Helper);
            let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let comm_span = trace_r
                    .as_ref()
                    .map(|t| t.span(Track::helper(rank), "communicator"));
                communicator_loop(
                    comm_r,
                    queue_r,
                    window_r,
                    term_r,
                    cfg_r,
                    busy_r,
                    shutdown_r,
                    stats_r,
                    trace_r.as_ref(),
                );
                drop(comm_span);
            }));
            match out {
                Ok(()) => transport.thread_exit(rank, Lane::Helper),
                Err(p) => {
                    transport.abort();
                    std::panic::resume_unwind(p);
                }
            }
        });
        comm.transport().await_thread(rank, Lane::Helper);

        // Mesher loop (this thread).
        loop {
            if let Some(item) = queue.pop() {
                busy.store(true, Ordering::Release);
                let span = trace.as_ref().map(|t| t.span(Track::rank(rank), "lb.task"));
                results.push(process(item, &queue));
                if let Some(span) = span {
                    span.close();
                }
                busy.store(false, Ordering::Release);
                stats.lock().unwrap().processed += 1;
                window.fetch_add(done_slot, 1);
            } else {
                if shutdown.load(Ordering::Acquire) {
                    break;
                }
                // Park until the communicator queues transferred work,
                // signals shutdown, or traffic arrives for this rank.
                comm.pause(cfg.poll);
            }
        }
        // A raw join on a still-running communicator would block
        // *outside* the transport — under simulation that wedges the
        // cooperative schedule (the join holds the token the
        // communicator needs), and polling `is_finished` ties the
        // replayable schedule to real thread-exit timing. Wait through
        // the transport instead; the raw join then returns promptly.
        comm.transport().join_thread(rank, Lane::Helper);
        communicator.join().expect("communicator panicked");
    });
    // Keep this rank's endpoint alive until every communicator has exited:
    // a peer that observed the completion counter a poll-interval later
    // than us may still have a work request in flight to this rank.
    comm.barrier();
    let s = *stats.lock().unwrap();
    (results, s)
}

/// Runs the two-thread balanced processing loop on one rank. `process` is
/// the mesher body; it may push follow-up work into the queue it is given.
/// `total_window` must have `size + 1` slots: one load estimate per rank
/// plus the completed-items counter in the last slot. `total_items` is the
/// global number of items that will ever exist.
pub fn run_rank<W, F, R>(
    comm: &Comm,
    queue: Arc<WorkQueue<W>>,
    window: Window,
    total_items: u64,
    cfg: BalancerConfig,
    process: F,
) -> (Vec<R>, RankStats)
where
    W: WorkItem,
    F: FnMut(W, &WorkQueue<W>) -> R,
    R: Send,
{
    run_rank_inner(
        comm,
        queue,
        window,
        Termination::Static { total: total_items },
        cfg,
        None,
        process,
    )
}

/// Dynamic-workload variant of [`run_rank`]: the total number of items is
/// unknown upfront because processing an item may push follow-up items on
/// any rank (the paper's recursive decomposition/decoupling, where
/// "subdomains are repeatedly decoupled and sent to other processes").
///
/// `window` must have `size + 2` slots: per-rank load estimates, then the
/// completed-items counter at `size`, then the created-items counter at
/// `size + 1`. The queue must be built with [`WorkQueue::with_counter`]
/// pointing at `size + 1`. Termination: `completed == created`, checked
/// only after the initial barrier so every rank's seed items are counted.
pub fn run_rank_dynamic<W, F, R>(
    comm: &Comm,
    queue: Arc<WorkQueue<W>>,
    window: Window,
    cfg: BalancerConfig,
    process: F,
) -> (Vec<R>, RankStats)
where
    W: WorkItem,
    F: FnMut(W, &WorkQueue<W>) -> R,
    R: Send,
{
    run_rank_dynamic_traced(comm, queue, window, cfg, None, process)
}

/// [`run_rank_dynamic`] with a trace recorder: each processed item gets
/// an `lb.task` span on the rank's mesher lane, and the communicator
/// mirrors its protocol counters (requests, retries, resends, dedup)
/// plus queue-depth and steal-round-trip histograms into the registry.
/// All stamps come from the transport clock, so traces recorded under
/// the simulated transport are replay-identical per seed.
pub fn run_rank_dynamic_traced<W, F, R>(
    comm: &Comm,
    queue: Arc<WorkQueue<W>>,
    window: Window,
    cfg: BalancerConfig,
    trace: Option<Tracer>,
    process: F,
) -> (Vec<R>, RankStats)
where
    W: WorkItem,
    F: FnMut(W, &WorkQueue<W>) -> R,
    R: Send,
{
    let size = comm.size();
    assert!(window.len() >= size + 2, "dynamic mode needs size+2 slots");
    // All seed items must be registered before anyone can observe
    // completed == created.
    comm.barrier();
    run_rank_inner(
        comm,
        queue,
        window,
        Termination::Dynamic {
            created_slot: size + 1,
        },
        cfg,
        trace,
        process,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::run;

    #[derive(Debug, Clone)]
    struct Job {
        id: usize,
        work: u64,
    }
    impl WorkItem for Job {
        fn cost(&self) -> u64 {
            self.work
        }
    }

    fn spin(units: u64) {
        // Wall-clock work that the optimizer cannot remove, so steals have
        // time to happen regardless of build profile.
        std::thread::sleep(Duration::from_micros(units * 30));
    }

    #[test]
    fn priority_queue_pops_largest_first() {
        let q = WorkQueue::new(vec![
            Job { id: 0, work: 5 },
            Job { id: 1, work: 50 },
            Job { id: 2, work: 20 },
        ]);
        assert_eq!(q.load(), 75);
        assert_eq!(q.pop().unwrap().id, 1);
        assert_eq!(q.pop().unwrap().id, 2);
        assert_eq!(q.pop().unwrap().id, 0);
        assert!(q.pop().is_none());
    }

    #[test]
    fn fifo_among_equal_costs() {
        let q = WorkQueue::new(vec![
            Job { id: 0, work: 10 },
            Job { id: 1, work: 10 },
            Job { id: 2, work: 10 },
        ]);
        assert_eq!(q.pop().unwrap().id, 0);
        assert_eq!(q.pop().unwrap().id, 1);
        assert_eq!(q.pop().unwrap().id, 2);
    }

    #[test]
    fn skewed_work_is_balanced_across_ranks() {
        const RANKS: usize = 4;
        const ITEMS: usize = 40;
        let window = Window::new(RANKS + 1);
        let results = run(RANKS, |comm| {
            // All work starts on rank 0.
            let initial: Vec<Job> = if comm.rank() == 0 {
                (0..ITEMS).map(|id| Job { id, work: 20 }).collect()
            } else {
                Vec::new()
            };
            let queue = Arc::new(WorkQueue::new(initial));
            let (processed, stats) = run_rank(
                &comm,
                queue,
                window.clone(),
                ITEMS as u64,
                BalancerConfig {
                    threshold: 100,
                    poll: Duration::from_micros(100),
                    ..BalancerConfig::default()
                },
                |job, _q| {
                    spin(job.work);
                    job.id
                },
            );
            (processed, stats)
        });
        // Every item processed exactly once.
        let mut all: Vec<usize> = results.iter().flat_map(|(ids, _)| ids.clone()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..ITEMS).collect::<Vec<_>>());
        // Stealing actually happened.
        let received: usize = results.iter().map(|(_, s)| s.items_received).sum();
        assert!(received > 0, "no work was stolen");
        let donated: usize = results.iter().map(|(_, s)| s.items_donated).sum();
        assert_eq!(received, donated);
    }

    #[test]
    fn dynamically_created_work_is_processed() {
        const RANKS: usize = 2;
        // 4 seed items, each spawning 3 children: 16 total.
        let window = Window::new(RANKS + 1);
        let results = run(RANKS, |comm| {
            let initial: Vec<Job> = if comm.rank() == 0 {
                (0..4).map(|id| Job { id, work: 10 }).collect()
            } else {
                Vec::new()
            };
            let queue = Arc::new(WorkQueue::new(initial));
            let (processed, _stats) = run_rank(
                &comm,
                queue,
                window.clone(),
                16,
                BalancerConfig::default(),
                |job, q| {
                    spin(job.work);
                    if job.id < 4 {
                        for k in 0..3 {
                            q.push(Job {
                                id: 4 + job.id * 3 + k,
                                work: 5,
                            });
                        }
                    }
                    job.id
                },
            );
            processed
        });
        let mut all: Vec<usize> = results.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn single_rank_degenerates_to_sequential() {
        let window = Window::new(2);
        let results = run(1, |comm| {
            let queue = Arc::new(WorkQueue::new(
                (0..10).map(|id| Job { id, work: 1 }).collect(),
            ));
            run_rank(
                &comm,
                queue,
                window.clone(),
                10,
                BalancerConfig::default(),
                |job, _| job.id,
            )
            .0
        });
        assert_eq!(results[0].len(), 10);
    }

    #[test]
    fn backoff_doubles_then_caps() {
        let base = Duration::from_millis(1);
        assert_eq!(backoff(base, 0), base);
        assert_eq!(backoff(base, 1), base * 2);
        assert_eq!(backoff(base, 3), base * 8);
        assert_eq!(backoff(base, 6), base * 64);
        // Capped: further attempts keep the ceiling.
        assert_eq!(backoff(base, 7), base * 64);
        assert_eq!(backoff(base, 40), base * 64);
    }
}
