//! Stress tests for the runtime: randomized workloads, many ranks,
//! dynamic work creation, exactly-once processing.

use adm_mpirt::{run, run_rank, BalancerConfig, Src, Window, WorkItem, WorkQueue};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

#[derive(Debug, Clone)]
struct Job {
    id: usize,
    cost: u64,
    spawn: usize,
}
impl WorkItem for Job {
    fn cost(&self) -> u64 {
        self.cost
    }
}

#[test]
fn randomized_dynamic_workload_processes_exactly_once() {
    use rand::{Rng, SeedableRng};
    const RANKS: usize = 6;
    let mut rng = rand::rngs::StdRng::seed_from_u64(123);
    // Seeds spawn a known number of children so the total is fixed.
    let seeds: Vec<Job> = (0..20)
        .map(|id| Job {
            id,
            cost: rng.gen_range(1..50),
            spawn: id % 3,
        })
        .collect();
    let total_children: usize = seeds.iter().map(|j| j.spawn).sum();
    let total = seeds.len() + total_children;
    let next_id = Arc::new(AtomicUsize::new(seeds.len()));
    let window = Window::new(RANKS + 1);
    let seeds = Mutex::new(Some(seeds));

    let results = run(RANKS, |comm| {
        let initial = if comm.rank() == 0 {
            seeds.lock().unwrap().take().unwrap()
        } else {
            Vec::new()
        };
        let queue = Arc::new(WorkQueue::new(initial));
        let next_id = next_id.clone();
        let (ids, stats) = run_rank(
            &comm,
            queue,
            window.clone(),
            total as u64,
            BalancerConfig {
                threshold: 30,
                poll: Duration::from_micros(100),
                ..BalancerConfig::default()
            },
            move |job, q| {
                std::thread::sleep(Duration::from_micros(20 * job.cost));
                for _ in 0..job.spawn {
                    let id = next_id.fetch_add(1, Ordering::Relaxed);
                    q.push(Job {
                        id,
                        cost: 5,
                        spawn: 0,
                    });
                }
                job.id
            },
        );
        (ids, stats)
    });
    let mut all: Vec<usize> = results.iter().flat_map(|(ids, _)| ids.clone()).collect();
    all.sort_unstable();
    all.dedup();
    assert_eq!(all.len(), total, "lost or duplicated work");
    // Conservation of transfers.
    let donated: usize = results.iter().map(|(_, s)| s.items_donated).sum();
    let received: usize = results.iter().map(|(_, s)| s.items_received).sum();
    assert_eq!(donated, received);
}

#[test]
fn heavily_skewed_costs_still_terminate() {
    const RANKS: usize = 4;
    let window = Window::new(RANKS + 1);
    let jobs = Mutex::new(Some(
        (0..30)
            .map(|id| Job {
                id,
                cost: if id == 0 { 10_000 } else { 1 },
                spawn: 0,
            })
            .collect::<Vec<_>>(),
    ));
    let results = run(RANKS, |comm| {
        let initial = if comm.rank() == 0 {
            jobs.lock().unwrap().take().unwrap()
        } else {
            Vec::new()
        };
        let queue = Arc::new(WorkQueue::new(initial));
        run_rank(
            &comm,
            queue,
            window.clone(),
            30,
            BalancerConfig::default(),
            |job, _| {
                // The huge job sleeps a bounded amount in tests.
                std::thread::sleep(Duration::from_micros(job.cost.min(2000)));
                job.id
            },
        )
        .0
    });
    let processed: usize = results.iter().map(|v| v.len()).sum();
    assert_eq!(processed, 30);
}

#[test]
fn many_ranks_with_no_work_terminate() {
    const RANKS: usize = 8;
    let window = Window::new(RANKS + 1);
    let results = run(RANKS, |comm| {
        // Zero total items: every rank must exit promptly.
        let queue: Arc<WorkQueue<Job>> = Arc::new(WorkQueue::new(Vec::new()));
        run_rank(
            &comm,
            queue,
            window.clone(),
            0,
            BalancerConfig::default(),
            |job: Job, _| job.id,
        )
        .0
        .len()
    });
    assert!(results.iter().all(|&n| n == 0));
}

#[test]
fn messages_interleave_with_balancing() {
    // The LB tag must not interfere with user messages on other tags.
    const RANKS: usize = 3;
    let window = Window::new(RANKS + 1);
    let results = run(RANKS, |comm| {
        let initial: Vec<Job> = if comm.rank() == 0 {
            (0..12)
                .map(|id| Job {
                    id,
                    cost: 3,
                    spawn: 0,
                })
                .collect()
        } else {
            Vec::new()
        };
        let queue = Arc::new(WorkQueue::new(initial));
        let (ids, _) = run_rank(
            &comm,
            queue,
            window.clone(),
            12,
            BalancerConfig::default(),
            |job, _| {
                std::thread::sleep(Duration::from_micros(100));
                job.id
            },
        );
        // Post-balancing user traffic on a distinct tag.
        comm.send((comm.rank() + 1) % comm.size(), 777, ids.len() as u64);
        let (_, n) = comm.recv::<u64>(Src::Any, 777);
        (ids.len(), n)
    });
    let total: usize = results.iter().map(|(n, _)| n).sum();
    assert_eq!(total, 12);
    let relayed: u64 = results.iter().map(|(_, n)| *n).sum();
    assert_eq!(relayed as usize, total);
}

mod dynamic_mode {
    use adm_mpirt::{run, run_rank_dynamic, BalancerConfig, Window, WorkItem, WorkQueue};
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    /// A binary-splitting task: value n spawns n/2 twice until n == 1.
    #[derive(Debug, Clone)]
    struct Split(u64);
    impl WorkItem for Split {
        fn cost(&self) -> u64 {
            self.0
        }
    }

    #[test]
    fn recursive_splitting_terminates_and_covers_all_leaves() {
        const RANKS: usize = 4;
        const ROOT: u64 = 64; // 64 leaves of value 1; 127 tasks total
        let window = Window::new(RANKS + 2);
        let seed = Mutex::new(Some(vec![Split(ROOT)]));
        let results = run(RANKS, |comm| {
            let initial = if comm.rank() == 0 {
                seed.lock().unwrap().take().unwrap()
            } else {
                Vec::new()
            };
            let queue = Arc::new(WorkQueue::with_counter(
                initial,
                window.clone(),
                comm.size() + 1,
            ));
            let (leaves, stats) = run_rank_dynamic(
                &comm,
                queue,
                window.clone(),
                BalancerConfig {
                    threshold: 8,
                    poll: Duration::from_micros(100),
                    ..BalancerConfig::default()
                },
                |task: Split, q| {
                    std::thread::sleep(Duration::from_micros(50));
                    if task.0 > 1 {
                        q.push(Split(task.0 / 2));
                        q.push(Split(task.0 / 2));
                        0u64
                    } else {
                        1u64
                    }
                },
            );
            (leaves.iter().sum::<u64>(), stats)
        });
        let leaves: u64 = results.iter().map(|(n, _)| n).sum();
        assert_eq!(leaves, ROOT, "leaf count mismatch");
        let processed: usize = results.iter().map(|(_, s)| s.processed).sum();
        assert_eq!(processed as u64, 2 * ROOT - 1, "task count mismatch");
        // The tree actually spread across ranks.
        let busy_ranks = results.iter().filter(|(_, s)| s.processed > 0).count();
        assert!(busy_ranks >= 2, "no distribution happened");
    }

    #[test]
    fn dynamic_mode_with_empty_seed_on_all_but_root() {
        const RANKS: usize = 3;
        let window = Window::new(RANKS + 2);
        let seed = Mutex::new(Some(vec![Split(1), Split(1), Split(1)]));
        let results = run(RANKS, |comm| {
            let initial = if comm.rank() == 0 {
                seed.lock().unwrap().take().unwrap()
            } else {
                Vec::new()
            };
            let queue = Arc::new(WorkQueue::with_counter(
                initial,
                window.clone(),
                comm.size() + 1,
            ));
            run_rank_dynamic(
                &comm,
                queue,
                window.clone(),
                BalancerConfig::default(),
                |t: Split, _| t.0,
            )
            .0
            .len()
        });
        assert_eq!(results.iter().sum::<usize>(), 3);
    }
}
