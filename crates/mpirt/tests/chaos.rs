//! Seeded schedule-sweep tests: the load balancer under the simulated
//! fault transport.
//!
//! Every run here executes on [`SimTransport`] — virtual time, one seeded
//! RNG stream for scheduling and faults — so each (seed, ranks, protocol)
//! triple is a reproducible adversarial schedule. A failure prints the
//! triple; replaying it is `FaultPlan::chaos(seed)` with the same rank
//! count.

use adm_mpirt::{
    run_rank_dynamic_traced, run_with, BalancerConfig, Comm, FaultPlan, Protocol, RankStats,
    SimTransport, Src, Transport, TransportClock, WorkItem, WorkQueue,
};
use adm_trace::Tracer;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A binary-splitting task with a tree-unique id: node `id` spawns
/// `2*id+1` and `2*id+2`, so exactly-once processing is checkable per
/// task, not just by count.
#[derive(Debug, Clone)]
struct Split {
    id: u64,
    n: u64,
}
impl WorkItem for Split {
    fn cost(&self) -> u64 {
        self.n
    }
}

const ROOT: u64 = 32; // 63 tasks, 32 leaves

fn expected_task_ids(id: u64, n: u64, out: &mut Vec<u64>) {
    out.push(id);
    if n > 1 {
        expected_task_ids(2 * id + 1, n / 2, out);
        expected_task_ids(2 * id + 2, n / 2, out);
    }
}

fn sim_config(protocol: Protocol) -> BalancerConfig {
    BalancerConfig {
        threshold: 8,
        poll: Duration::from_micros(200),
        protocol,
        ..BalancerConfig::default()
    }
}

/// One rank's outcome: the task ids it processed, and its stats.
type RankOutcome = (Vec<u64>, RankStats);

/// Runs the recursive workload on a fault-injected fabric and returns
/// per-rank outcomes, the schedule fingerprint, and the trace
/// fingerprint (spans + counters recorded under virtual time).
fn run_case(
    ranks: usize,
    plan: FaultPlan,
    protocol: Protocol,
) -> (Vec<RankOutcome>, (u64, u64), (u64, u64)) {
    let sim = SimTransport::new(ranks, plan);
    let transport: Arc<dyn Transport> = Arc::new(sim.clone());
    let tracer = Tracer::new(Arc::new(TransportClock::new(transport.clone())));
    let window = transport.window(ranks + 2);
    let seed_items = Mutex::new(Some(vec![Split { id: 0, n: ROOT }]));
    let tracer_ref = &tracer;
    let results = run_with(transport, |comm: Comm| {
        let initial = if comm.rank() == 0 {
            seed_items.lock().unwrap().take().unwrap()
        } else {
            Vec::new()
        };
        let queue = Arc::new(WorkQueue::with_counter(
            initial,
            window.clone(),
            comm.size() + 1,
        ));
        run_rank_dynamic_traced(
            &comm,
            queue,
            window.clone(),
            sim_config(protocol),
            Some(tracer_ref.clone()),
            |t: Split, q| {
                // Model compute proportional to task size in virtual
                // time: without this every rank finishes at t≈0 and no
                // load ever moves, so the fault machinery sits idle.
                comm.advance(Duration::from_micros(50 + 40 * t.n));
                if t.n > 1 {
                    q.push(Split {
                        id: 2 * t.id + 1,
                        n: t.n / 2,
                    });
                    q.push(Split {
                        id: 2 * t.id + 2,
                        n: t.n / 2,
                    });
                }
                t.id
            },
        )
    });
    let snap = tracer.snapshot();
    adm_trace::check_well_formed(&snap).expect("chaos run produced a malformed trace");
    (results, sim.fingerprint(), tracer.fingerprint())
}

/// Asserts a completed run processed every task exactly once and
/// conserved transfers; `ctx` names the (seed, ranks) on failure.
fn assert_exactly_once(results: &[RankOutcome], ctx: &str) {
    let mut ids: Vec<u64> = results.iter().flat_map(|(v, _)| v.clone()).collect();
    ids.sort_unstable();
    let mut expected = Vec::new();
    expected_task_ids(0, ROOT, &mut expected);
    expected.sort_unstable();
    assert_eq!(ids, expected, "lost or duplicated work [{ctx}]");
    let donated: usize = results.iter().map(|(_, s)| s.items_donated).sum();
    let received: usize = results.iter().map(|(_, s)| s.items_received).sum();
    assert_eq!(donated, received, "transfer conservation violated [{ctx}]");
}

#[test]
fn hardened_survives_64_chaos_seeds_across_rank_counts() {
    let mut agg = RankStats::default();
    for &ranks in &[1usize, 2, 4, 8] {
        for seed in 0..64u64 {
            let ctx = format!("seed {seed}, ranks {ranks}, Hardened");
            let (results, _, trace_fp) =
                run_case(ranks, FaultPlan::chaos(seed), Protocol::Hardened);
            assert_exactly_once(&results, &ctx);
            // Golden-fingerprint spot check: every 8th schedule is
            // replayed and must reproduce the exact same trace —
            // virtual-time tracing is part of the deterministic state.
            if seed % 8 == 0 {
                let (_, _, replay_fp) = run_case(ranks, FaultPlan::chaos(seed), Protocol::Hardened);
                assert_eq!(trace_fp, replay_fp, "trace fingerprint drifted [{ctx}]");
            }
            for (_, s) in &results {
                agg.requests_sent += s.requests_sent;
                agg.request_retries += s.request_retries;
                agg.work_resends += s.work_resends;
                agg.dup_transfers_discarded += s.dup_transfers_discarded;
                agg.dup_requests_served += s.dup_requests_served;
            }
        }
    }
    // The sweep must actually have exercised the hardening machinery:
    // across 256 adversarial schedules, retries, resends, and dedup all
    // fire somewhere (otherwise the fault model went soft).
    assert!(agg.requests_sent > 0, "no work requests in whole sweep");
    assert!(agg.request_retries > 0, "no request timeout ever fired");
    assert!(agg.work_resends > 0, "no donation was ever retransmitted");
    assert!(
        agg.dup_transfers_discarded > 0,
        "receiver dedup never engaged"
    );
}

#[test]
fn same_seed_replays_identical_schedule_and_results() {
    for &ranks in &[2usize, 4] {
        let seed = 7;
        let (r1, f1, t1) = run_case(ranks, FaultPlan::chaos(seed), Protocol::Hardened);
        let (r2, f2, t2) = run_case(ranks, FaultPlan::chaos(seed), Protocol::Hardened);
        assert_eq!(f1, f2, "fingerprint differs on replay (ranks {ranks})");
        assert_eq!(
            t1, t2,
            "trace fingerprint differs on replay (ranks {ranks})"
        );
        let ids = |r: &[RankOutcome]| r.iter().map(|(v, _)| v.clone()).collect::<Vec<_>>();
        assert_eq!(ids(&r1), ids(&r2), "per-rank results differ on replay");
        let stats = |r: &[RankOutcome]| r.iter().map(|(_, s)| *s).collect::<Vec<_>>();
        assert_eq!(stats(&r1), stats(&r2), "stats differ on replay");
        // A different seed must explore a different schedule.
        let (_, f3, _) = run_case(ranks, FaultPlan::chaos(seed + 1), Protocol::Hardened);
        assert_ne!(f1, f3, "distinct seeds produced identical traces");
    }
}

/// The pre-hardening protocol demonstrably fails under some chaos seed
/// (lost work deadlocks the run, or duplicated transfers double-process),
/// and the hardened protocol survives that exact schedule. This is the
/// regression anchoring the whole exercise: the fault model is strong
/// enough to kill the naive balancer.
#[test]
fn naive_protocol_fails_where_hardened_succeeds() {
    // Scan for a fault-sensitive seed. Failures surface as a panic (the
    // simulator poisons deadlocked/livelocked runs) or as a bad result
    // set. Panic output is silenced during the scan — failing is what
    // these runs are *for*.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut sensitive = None;
    for seed in 0..64u64 {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let (results, _, _) = run_case(4, FaultPlan::chaos(seed), Protocol::Naive);
            let mut ids: Vec<u64> = results.iter().flat_map(|(v, _)| v.clone()).collect();
            ids.sort_unstable();
            let mut expected = Vec::new();
            expected_task_ids(0, ROOT, &mut expected);
            expected.sort_unstable();
            ids == expected
        }));
        if !matches!(outcome, Ok(true)) {
            sensitive = Some(seed);
            break;
        }
    }
    std::panic::set_hook(prev_hook);
    let seed = sensitive
        .expect("no chaos seed in 0..64 perturbed the naive protocol — fault model too weak");
    // The hardened protocol completes exactly-once under the same plan.
    let ctx = format!("sensitive seed {seed}, ranks 4, Hardened");
    let (results, _, _) = run_case(4, FaultPlan::chaos(seed), Protocol::Hardened);
    assert_exactly_once(&results, &ctx);
}

#[test]
fn forced_drops_trigger_retry_and_resend_paths() {
    // Every cloneable message is dropped twice before the fair-lossy cap
    // forces delivery: timeouts, backoff, and resends must all engage,
    // and the run still completes exactly once.
    let plan = FaultPlan {
        drop_p: 1.0,
        max_consecutive_drops: 2,
        ..FaultPlan::reliable(11)
    };
    let (results, _, _) = run_case(2, plan, Protocol::Hardened);
    assert_exactly_once(&results, "forced-drop plan, ranks 2");
    let retries: usize = results.iter().map(|(_, s)| s.request_retries).sum();
    let resends: usize = results.iter().map(|(_, s)| s.work_resends).sum();
    assert!(
        retries + resends > 0,
        "all messages dropped twice yet nothing was retransmitted"
    );
}

#[test]
fn stalled_rank_does_not_wedge_the_run() {
    let plan = FaultPlan {
        stall: Some(adm_mpirt::StallPlan {
            victim_salt: 1,
            from_ns: 0,
            until_ns: 2_000_000_000,
            factor: 40,
        }),
        ..FaultPlan::reliable(3)
    };
    let (results, _, _) = run_case(4, plan, Protocol::Hardened);
    assert_exactly_once(&results, "stall plan, ranks 4");
}

/// User-level messaging survives chaos when the user speaks a resend
/// protocol: N numbered messages from rank 0 to rank 1, resent until
/// acknowledged, deduplicated at the receiver. Exactly-once *visible*
/// delivery is the property the whole balancer protocol relies on.
fn reliable_stream_roundtrip(plan: FaultPlan, n: u64) {
    const DATA: u64 = 0xD0;
    const ACK: u64 = 0xAC;
    const FIN: u64 = 0xF1;
    let sim = SimTransport::new(2, plan);
    let transport: Arc<dyn Transport> = Arc::new(sim);
    let received = run_with(transport, |comm: Comm| {
        if comm.rank() == 0 {
            let mut acked = vec![false; n as usize];
            let mut last_send = comm.now();
            let resend_every = Duration::from_millis(2);
            for i in 0..n {
                comm.send_cloneable(1, DATA, i);
            }
            while acked.iter().any(|a| !a) {
                if let Some((_, i)) = comm.try_recv::<u64>(Src::Rank(1), ACK) {
                    acked[i as usize] = true;
                    continue;
                }
                if comm.now() - last_send > resend_every {
                    for (i, _) in acked.iter().enumerate().filter(|(_, a)| !**a) {
                        comm.send_cloneable(1, DATA, i as u64);
                    }
                    last_send = comm.now();
                }
                comm.pause(Duration::from_micros(200));
            }
            // Opaque payloads are exempt from drop/dup, so FIN is the
            // reliable shutdown edge of this little protocol.
            comm.send(1, FIN, ());
            Vec::new()
        } else {
            let mut seen = vec![0u32; n as usize];
            // Serve (re-)deliveries until the sender declares itself
            // fully acked; duplicates bump the count but must never
            // surface as new values.
            loop {
                if comm.try_recv::<()>(Src::Rank(0), FIN).is_some() {
                    break;
                }
                if let Some((_, i)) = comm.try_recv::<u64>(Src::Rank(0), DATA) {
                    seen[i as usize] += 1;
                    comm.send_cloneable(0, ACK, i);
                } else {
                    comm.pause(Duration::from_micros(200));
                }
            }
            seen
        }
    });
    let seen = &received[1];
    assert!(
        seen.iter().all(|&c| c >= 1),
        "message lost despite resends: {seen:?}"
    );
}

#[test]
fn resend_protocol_delivers_every_message_under_chaos() {
    for seed in [1u64, 9, 23, 41] {
        reliable_stream_roundtrip(FaultPlan::chaos(seed), 8);
    }
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Arbitrary fault regimes (drop/dup/delay/reorder) never break
        /// exactly-once processing of the hardened balancer.
        #[test]
        fn hardened_exactly_once_under_random_fault_programs(
            seed in 0u64..1_000_000,
            drop_p in 0.0f64..0.4,
            dup_p in 0.0f64..0.3,
            heavy_delay_p in 0.0f64..0.3,
            jitter_us in 1u64..80,
            cap in 1u32..5,
        ) {
            let plan = FaultPlan {
                drop_p,
                dup_p,
                heavy_delay_p,
                heavy_factor: 25,
                jitter_ns: jitter_us * 1_000,
                max_consecutive_drops: cap,
                ..FaultPlan::reliable(seed)
            };
            let ctx = format!(
                "seed {seed}, drop {drop_p:.3}, dup {dup_p:.3}, heavy {heavy_delay_p:.3}"
            );
            let (results, _, _) = run_case(3, plan, Protocol::Hardened);
            assert_exactly_once(&results, &ctx);
        }

        /// The user-level resend protocol achieves exactly-once *visible*
        /// delivery under the same random regimes.
        #[test]
        fn resend_stream_survives_random_fault_programs(
            seed in 0u64..1_000_000,
            drop_p in 0.0f64..0.5,
            dup_p in 0.0f64..0.4,
            cap in 1u32..4,
        ) {
            let plan = FaultPlan {
                drop_p,
                dup_p,
                max_consecutive_drops: cap,
                ..FaultPlan::reliable(seed)
            };
            reliable_stream_roundtrip(plan, 6);
        }
    }
}
