//! # adm-simnet — discrete-event cluster simulation
//!
//! This host has one core, so the paper's 256-rank strong-scaling curves
//! (Figures 11/12) cannot be *measured* here. They are instead
//! *reproduced* by simulation: the bench harness runs the real pipeline
//! sequentially, records each subdomain's actual meshing cost and payload
//! size, and this crate replays the paper's parallel execution — tree
//! distribution of subdomains, priority-queue scheduling (largest first),
//! and the communicator-thread work-request protocol over a modeled 4X
//! FDR InfiniBand interconnect — as a discrete-event simulation that
//! yields the makespan for any rank count.
//!
//! Only the *schedule and communication* are modeled; every task cost fed
//! in is measured from the real mesher.

pub mod events;
pub mod link;
pub mod sim;

pub use events::{DetRng, EventQueue};
pub use link::LinkModel;
pub use sim::{simulate, InitialDist, Schedule, SimConfig, SimResult, Task, TaskInterval};
