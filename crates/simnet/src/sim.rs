//! The discrete-event engine.
//!
//! Ranks process tasks from a local queue (largest estimated cost first,
//! per §IV's priority-queue policy); an idle rank's communicator requests
//! work from the currently most-loaded rank, paying request latency and
//! the task's transfer time — exactly the protocol of §II.F/§III with the
//! interconnect from [`crate::link`].

use crate::events::EventQueue;
use crate::link::LinkModel;

/// One unit of meshing work with its **measured** cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Task {
    /// Measured processing time in seconds.
    pub cost_s: f64,
    /// Serialized size in bytes (for transfer costs).
    pub bytes: u64,
}

/// Local queue policy (ablation A4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Largest estimated cost first (the paper's policy).
    LargestFirst,
    /// Arrival order.
    Fifo,
}

/// How tasks reach the ranks initially.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InitialDist {
    /// Recursive-tree distribution (the decomposition itself): level `l`
    /// splits run on `2^l` ranks concurrently; each handoff pays a
    /// transfer of half the remaining payload. `split_cost_s_per_byte`
    /// models the measured splitting work per payload byte.
    Tree {
        /// Splitting cost per payload byte at each level.
        split_cost_s_per_byte: f64,
    },
    /// Round-robin static assignment (no distribution cost).
    RoundRobin,
    /// Everything starts on rank 0 (stress test for the balancer).
    AllOnRoot,
}

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Interconnect model.
    pub link: LinkModel,
    /// A rank requests work when its remaining queued cost falls below
    /// this many seconds (the communicator pre-fetches work before the
    /// mesher runs dry).
    pub lb_threshold_s: f64,
    /// Communicator poll interval (delay before re-requesting after a
    /// deny).
    pub poll_s: f64,
    /// Enable the dynamic load balancer.
    pub steal: bool,
    /// Queue policy.
    pub schedule: Schedule,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            link: LinkModel::fdr_infiniband(),
            lb_threshold_s: 0.05,
            poll_s: 100e-6,
            steal: true,
            schedule: Schedule::LargestFirst,
        }
    }
}

/// One executed task occurrence: which rank ran it, and when. The
/// schedule benches export these as trace spans (one lane per simulated
/// rank in `about:tracing`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskInterval {
    /// Executing rank.
    pub rank: usize,
    /// Start time in seconds.
    pub start_s: f64,
    /// End time in seconds.
    pub end_s: f64,
}

/// Simulation output.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Wall-clock makespan in seconds.
    pub makespan_s: f64,
    /// Number of successful work transfers.
    pub steals: usize,
    /// Number of denied requests.
    pub denies: usize,
    /// Total idle time across ranks.
    pub idle_s: f64,
    /// Total communication time (transfers + RMA polling charged).
    pub comm_s: f64,
    /// Per-rank busy time.
    pub busy_s: Vec<f64>,
    /// Time when the initial distribution completed.
    pub setup_s: f64,
    /// Every executed task, in start order.
    pub intervals: Vec<TaskInterval>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Event {
    /// Rank finishes its current task.
    Finish { rank: usize },
    /// A work request from `from` arrives at `victim`.
    Request { from: usize, victim: usize },
    /// A reply (work or deny) arrives back at `rank`.
    Reply { rank: usize, task: Option<Task> },
    /// A denied rank retries after its poll interval.
    Retry { rank: usize },
}

struct RankState {
    queue: Vec<Task>,
    /// Remaining queued cost.
    load_s: f64,
    busy_until: Option<f64>,
    waiting_reply: bool,
    busy_s: f64,
    idle_since: Option<f64>,
}

impl RankState {
    fn pop(&mut self, schedule: Schedule) -> Option<Task> {
        if self.queue.is_empty() {
            return None;
        }
        let idx = match schedule {
            Schedule::Fifo => 0,
            Schedule::LargestFirst => {
                let mut best = 0;
                for (i, t) in self.queue.iter().enumerate() {
                    if t.cost_s > self.queue[best].cost_s {
                        best = i;
                    }
                }
                best
            }
        };
        let t = self.queue.remove(idx);
        self.load_s -= t.cost_s;
        Some(t)
    }

    /// Donation policy: give away the largest queued item, keeping one in
    /// reserve only when the mesher is idle (a busy mesher's in-flight
    /// task is the reserve — the communicator "requests additional work
    /// before the mesher thread runs out", so symmetric donors may hand
    /// over their last queued item while still working).
    fn donate(&mut self) -> Option<Task> {
        let reserve = if self.busy_until.is_some() { 1 } else { 2 };
        if self.queue.len() < reserve {
            return None;
        }
        let mut best = 0;
        for (i, t) in self.queue.iter().enumerate() {
            if t.cost_s > self.queue[best].cost_s {
                best = i;
            }
        }
        let t = self.queue.remove(best);
        self.load_s -= t.cost_s;
        Some(t)
    }
}

/// Runs the simulation for `p` ranks over `tasks`.
pub fn simulate(p: usize, tasks: &[Task], dist: InitialDist, cfg: &SimConfig) -> SimResult {
    assert!(p >= 1);
    let mut ranks: Vec<RankState> = (0..p)
        .map(|_| RankState {
            queue: Vec::new(),
            load_s: 0.0,
            busy_until: None,
            waiting_reply: false,
            busy_s: 0.0,
            idle_since: None,
        })
        .collect();

    // Initial distribution.
    let total_bytes: u64 = tasks.iter().map(|t| t.bytes).sum();
    let setup_s = match dist {
        InitialDist::RoundRobin => {
            for (i, t) in tasks.iter().enumerate() {
                let r = i % p;
                ranks[r].queue.push(*t);
                ranks[r].load_s += t.cost_s;
            }
            0.0
        }
        InitialDist::AllOnRoot => {
            for t in tasks {
                ranks[0].queue.push(*t);
                ranks[0].load_s += t.cost_s;
            }
            0.0
        }
        InitialDist::Tree {
            split_cost_s_per_byte,
        } => {
            // Balanced recursive halving over log2(p) levels: at level l,
            // the active ranks each split their payload and ship half to a
            // partner. Per-level time = split of the local payload plus
            // the transfer of half of it; payload halves every level.
            for (i, t) in tasks.iter().enumerate() {
                let r = i % p;
                ranks[r].queue.push(*t);
                ranks[r].load_s += t.cost_s;
            }
            let levels = (p as f64).log2().ceil() as u32;
            let mut time = 0.0;
            let mut payload = total_bytes as f64;
            for _ in 0..levels {
                time += payload * split_cost_s_per_byte;
                time += cfg.link.transfer_s((payload / 2.0) as u64);
                payload /= 2.0;
            }
            time
        }
    };

    let mut events: EventQueue<f64, Event> = EventQueue::new();

    let mut steals = 0usize;
    let mut denies = 0usize;
    let mut idle_s = 0.0;
    let mut comm_s = 0.0;
    let mut remaining = tasks.len();
    let mut intervals: Vec<TaskInterval> = Vec::with_capacity(tasks.len());
    let mut now;

    // Start every rank at setup completion.
    for r in 0..p {
        if let Some(task) = ranks[r].pop(cfg.schedule) {
            ranks[r].busy_until = Some(setup_s + task.cost_s);
            ranks[r].busy_s += task.cost_s;
            intervals.push(TaskInterval {
                rank: r,
                start_s: setup_s,
                end_s: setup_s + task.cost_s,
            });
            events.push(setup_s + task.cost_s, Event::Finish { rank: r });
        } else {
            ranks[r].idle_since = Some(setup_s);
        }
        // Idle ranks with stealing enabled request immediately.
        if cfg.steal && ranks[r].busy_until.is_none() {
            request_work(r, setup_s, p, &mut ranks, &mut events, cfg, &mut comm_s);
        }
    }

    let mut makespan = setup_s;
    while let Some((at, ev)) = events.pop() {
        now = at;
        makespan = makespan.max(now);
        match ev {
            Event::Finish { rank } => {
                remaining -= 1;
                ranks[rank].busy_until = None;
                // Pre-fetch: if the remaining load is under the threshold,
                // fire a request while still working (the communicator
                // thread overlaps with the mesher).
                if cfg.steal
                    && remaining > 0
                    && ranks[rank].load_s < cfg.lb_threshold_s
                    && !ranks[rank].waiting_reply
                {
                    request_work(rank, now, p, &mut ranks, &mut events, cfg, &mut comm_s);
                }
                if let Some(task) = ranks[rank].pop(cfg.schedule) {
                    ranks[rank].busy_until = Some(now + task.cost_s);
                    ranks[rank].busy_s += task.cost_s;
                    intervals.push(TaskInterval {
                        rank,
                        start_s: now,
                        end_s: now + task.cost_s,
                    });
                    events.push(now + task.cost_s, Event::Finish { rank });
                } else {
                    ranks[rank].idle_since = Some(now);
                }
            }
            Event::Request { from, victim } => {
                let reply_task = ranks[victim].donate();
                let delay = match &reply_task {
                    Some(t) => cfg.link.transfer_s(t.bytes),
                    None => cfg.link.transfer_s(16),
                };
                comm_s += delay;
                if reply_task.is_some() {
                    steals += 1;
                } else {
                    denies += 1;
                }
                events.push(
                    now + delay,
                    Event::Reply {
                        rank: from,
                        task: reply_task,
                    },
                );
            }
            Event::Reply { rank, task } => {
                ranks[rank].waiting_reply = false;
                match task {
                    Some(t) => {
                        ranks[rank].queue.push(t);
                        ranks[rank].load_s += t.cost_s;
                        if ranks[rank].busy_until.is_none() {
                            if let Some(since) = ranks[rank].idle_since.take() {
                                idle_s += now - since;
                            }
                            let task = ranks[rank].pop(cfg.schedule).expect("just pushed");
                            ranks[rank].busy_until = Some(now + task.cost_s);
                            ranks[rank].busy_s += task.cost_s;
                            intervals.push(TaskInterval {
                                rank,
                                start_s: now,
                                end_s: now + task.cost_s,
                            });
                            events.push(now + task.cost_s, Event::Finish { rank });
                        }
                    }
                    None => {
                        if remaining > 0 {
                            events.push(now + cfg.poll_s, Event::Retry { rank });
                        }
                    }
                }
            }
            Event::Retry { rank } => {
                if remaining > 0
                    && ranks[rank].load_s < cfg.lb_threshold_s
                    && !ranks[rank].waiting_reply
                {
                    request_work(rank, now, p, &mut ranks, &mut events, cfg, &mut comm_s);
                }
            }
        }
    }
    assert_eq!(remaining, 0, "simulation ended with unprocessed tasks");
    // Close out idle intervals.
    for r in &mut ranks {
        if let Some(since) = r.idle_since.take() {
            idle_s += makespan - since;
        }
    }
    SimResult {
        makespan_s: makespan,
        steals,
        denies,
        idle_s,
        comm_s,
        busy_s: ranks.iter().map(|r| r.busy_s).collect(),
        setup_s,
        intervals,
    }
}

fn request_work(
    rank: usize,
    now: f64,
    p: usize,
    ranks: &mut [RankState],
    events: &mut EventQueue<f64, Event>,
    cfg: &SimConfig,
    comm_s: &mut f64,
) {
    // Victim: the most loaded other rank (the RMA window read).
    let mut best: Option<(usize, f64)> = None;
    for (i, r) in ranks.iter().enumerate().take(p) {
        if i == rank {
            continue;
        }
        if r.load_s > 0.0 && best.is_none_or(|(_, b)| r.load_s > b) {
            best = Some((i, r.load_s));
        }
    }
    let Some((victim, _)) = best else { return };
    ranks[rank].waiting_reply = true;
    let delay = cfg.link.rma_op_s + cfg.link.transfer_s(16); // window read + request msg
    *comm_s += delay;
    events.push(now + delay, Event::Request { from: rank, victim });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_tasks(n: usize, cost: f64, bytes: u64) -> Vec<Task> {
        (0..n)
            .map(|_| Task {
                cost_s: cost,
                bytes,
            })
            .collect()
    }

    #[test]
    fn single_rank_is_serial_sum() {
        let tasks = uniform_tasks(10, 0.5, 1000);
        let r = simulate(1, &tasks, InitialDist::RoundRobin, &SimConfig::default());
        assert!((r.makespan_s - 5.0).abs() < 1e-12);
        assert_eq!(r.steals, 0);
    }

    #[test]
    fn ideal_link_perfect_split() {
        let tasks = uniform_tasks(64, 0.25, 1000);
        let cfg = SimConfig {
            link: LinkModel::ideal(),
            ..Default::default()
        };
        let r = simulate(8, &tasks, InitialDist::RoundRobin, &cfg);
        // 64 equal tasks over 8 ranks: exactly 8 tasks each.
        assert!(
            (r.makespan_s - 2.0).abs() < 1e-9,
            "makespan {}",
            r.makespan_s
        );
    }

    #[test]
    fn stealing_rescues_all_on_root() {
        let tasks = uniform_tasks(64, 0.1, 10_000);
        let cfg = SimConfig::default();
        let with = simulate(8, &tasks, InitialDist::AllOnRoot, &cfg);
        let without = simulate(
            8,
            &tasks,
            InitialDist::AllOnRoot,
            &SimConfig {
                steal: false,
                ..cfg
            },
        );
        assert!(with.steals > 0);
        // Without stealing rank 0 does everything.
        assert!((without.makespan_s - 6.4).abs() < 1e-9);
        // With stealing the work spreads: at least 3x faster.
        assert!(
            with.makespan_s < without.makespan_s / 3.0,
            "steal makespan {}",
            with.makespan_s
        );
    }

    #[test]
    fn efficiency_declines_with_rank_count() {
        // Fixed work, finite tasks: strong scaling saturates (Fig 11/12
        // shape).
        let tasks: Vec<Task> = (0..512)
            .map(|i| Task {
                cost_s: 0.01 + 0.0001 * (i % 7) as f64,
                bytes: 50_000,
            })
            .collect();
        let total: f64 = tasks.iter().map(|t| t.cost_s).sum();
        let cfg = SimConfig::default();
        let mut prev_eff = f64::INFINITY;
        for p in [1usize, 4, 16, 64, 256] {
            let r = simulate(
                p,
                &tasks,
                InitialDist::Tree {
                    split_cost_s_per_byte: 2e-9,
                },
                &cfg,
            );
            let speedup = total / r.makespan_s;
            let eff = speedup / p as f64;
            assert!(speedup <= p as f64 + 1e-9);
            assert!(
                eff <= prev_eff + 1e-9,
                "efficiency rose from {prev_eff} to {eff} at p={p}"
            );
            prev_eff = eff;
        }
        // Sanity: parallelism still pays off in absolute terms.
        let r256 = simulate(
            256,
            &tasks,
            InitialDist::Tree {
                split_cost_s_per_byte: 2e-9,
            },
            &cfg,
        );
        assert!(total / r256.makespan_s > 20.0);
    }

    #[test]
    fn largest_first_beats_fifo_on_heterogeneous_tails() {
        // A few huge tasks among many small ones: FIFO risks starting a
        // huge task last (long tail); largest-first starts them first.
        let mut tasks = Vec::new();
        for _ in 0..4 {
            tasks.push(Task {
                cost_s: 1.0,
                bytes: 1000,
            });
        }
        for _ in 0..60 {
            tasks.push(Task {
                cost_s: 0.05,
                bytes: 1000,
            });
        }
        // FIFO arrival order puts the big ones first in the list; reverse
        // so FIFO hits them last.
        tasks.reverse();
        let cfg = SimConfig {
            link: LinkModel::ideal(),
            ..Default::default()
        };
        let lf = simulate(4, &tasks, InitialDist::AllOnRoot, &cfg);
        let ff = simulate(
            4,
            &tasks,
            InitialDist::AllOnRoot,
            &SimConfig {
                schedule: Schedule::Fifo,
                ..cfg
            },
        );
        assert!(
            lf.makespan_s <= ff.makespan_s + 1e-9,
            "largest-first {} vs fifo {}",
            lf.makespan_s,
            ff.makespan_s
        );
    }

    #[test]
    fn busy_time_conserved() {
        let tasks = uniform_tasks(100, 0.02, 5000);
        let r = simulate(16, &tasks, InitialDist::RoundRobin, &SimConfig::default());
        let busy: f64 = r.busy_s.iter().sum();
        assert!((busy - 2.0).abs() < 1e-9, "busy {busy}");
    }

    #[test]
    fn intervals_cover_every_task() {
        let tasks = uniform_tasks(100, 0.02, 5000);
        let r = simulate(16, &tasks, InitialDist::AllOnRoot, &SimConfig::default());
        assert_eq!(r.intervals.len(), tasks.len());
        let mut per_rank = [0.0f64; 16];
        for iv in &r.intervals {
            assert!(iv.end_s > iv.start_s);
            assert!(iv.end_s <= r.makespan_s + 1e-12);
            per_rank[iv.rank] += iv.end_s - iv.start_s;
        }
        for (measured, busy) in per_rank.iter().zip(&r.busy_s) {
            assert!((measured - busy).abs() < 1e-9);
        }
    }

    #[test]
    fn setup_cost_grows_with_levels() {
        let tasks = uniform_tasks(64, 0.01, 100_000);
        let dist = InitialDist::Tree {
            split_cost_s_per_byte: 1e-8,
        };
        let cfg = SimConfig::default();
        let r4 = simulate(4, &tasks, dist, &cfg);
        let r64 = simulate(64, &tasks, dist, &cfg);
        assert!(r64.setup_s > r4.setup_s);
    }
}
