//! Interconnect model.
//!
//! The paper's cluster uses a 4X FDR InfiniBand fabric (~56 Gbit/s) with
//! RMA support (§IV). Message time is the classic alpha-beta model:
//! `t = latency + bytes / bandwidth`. One-sided RMA operations (the
//! work-load estimate puts/gets) are latency-dominated small transfers.

/// Alpha-beta link model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    /// One-way message latency in seconds.
    pub latency_s: f64,
    /// Bandwidth in bytes per second.
    pub bandwidth_bps: f64,
    /// Cost of a one-sided RMA put/get of a few words.
    pub rma_op_s: f64,
}

impl LinkModel {
    /// 4X FDR InfiniBand: ~1.5 us MPI latency, 56 Gbit/s signalling
    /// (~6.8 GB/s effective), ~1 us RMA ops.
    pub fn fdr_infiniband() -> Self {
        LinkModel {
            latency_s: 1.5e-6,
            bandwidth_bps: 6.8e9,
            rma_op_s: 1.0e-6,
        }
    }

    /// An infinitely fast network (for upper-bound/ablation runs).
    pub fn ideal() -> Self {
        LinkModel {
            latency_s: 0.0,
            bandwidth_bps: f64::INFINITY,
            rma_op_s: 0.0,
        }
    }

    /// Time to move `bytes` point-to-point.
    #[inline]
    pub fn transfer_s(&self, bytes: u64) -> f64 {
        self.latency_s + bytes as f64 / self.bandwidth_bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fdr_numbers_are_sane() {
        let l = LinkModel::fdr_infiniband();
        // A 1 MiB subdomain moves in ~150 us + latency.
        let t = l.transfer_s(1 << 20);
        assert!(t > 1e-4 && t < 1e-3, "1 MiB transfer {t}");
        // Small message is latency bound.
        assert!((l.transfer_s(64) - l.latency_s) / l.latency_s < 0.01);
    }

    #[test]
    fn ideal_link_is_free() {
        let l = LinkModel::ideal();
        assert_eq!(l.transfer_s(u64::MAX), 0.0);
    }

    #[test]
    fn transfer_scales_linearly() {
        let l = LinkModel::fdr_infiniband();
        let t1 = l.transfer_s(1_000_000) - l.latency_s;
        let t2 = l.transfer_s(2_000_000) - l.latency_s;
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }
}
