//! Deterministic discrete-event machinery shared by the performance
//! simulator ([`crate::sim`]) and the fault-injecting transport of
//! `adm-mpirt`.
//!
//! Both consumers need the same two primitives: a stable-priority event
//! queue (ties broken by insertion order, so identical inputs replay the
//! identical event sequence) and a small seedable generator whose stream
//! is platform-independent. Keeping them here means one audited
//! implementation of the determinism-critical code path.

use std::cmp::Ordering;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Timestamp types usable in an [`EventQueue`].
///
/// `f64` is admitted through `total_cmp` (the performance simulator keeps
/// seconds as floats); integer nanoseconds (`u64`) are what the virtual-time
/// transport uses.
pub trait SimTime: Copy {
    /// Total order over timestamps.
    fn cmp_total(a: Self, b: Self) -> Ordering;
}

impl SimTime for f64 {
    fn cmp_total(a: Self, b: Self) -> Ordering {
        a.total_cmp(&b)
    }
}

impl SimTime for u64 {
    fn cmp_total(a: Self, b: Self) -> Ordering {
        a.cmp(&b)
    }
}

struct Entry<T, E> {
    at: T,
    seq: u64,
    ev: E,
}

impl<T: SimTime, E> PartialEq for Entry<T, E> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl<T: SimTime, E> Eq for Entry<T, E> {}
impl<T: SimTime, E> PartialOrd for Entry<T, E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T: SimTime, E> Ord for Entry<T, E> {
    fn cmp(&self, other: &Self) -> Ordering {
        T::cmp_total(self.at, other.at).then_with(|| self.seq.cmp(&other.seq))
    }
}

/// A min-ordered event queue with deterministic tie-breaking: events at
/// the same timestamp pop in insertion order.
pub struct EventQueue<T: SimTime, E> {
    heap: BinaryHeap<Reverse<Entry<T, E>>>,
    seq: u64,
}

impl<T: SimTime, E> Default for EventQueue<T, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: SimTime, E> EventQueue<T, E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `ev` at time `at`.
    pub fn push(&mut self, at: T, ev: E) {
        self.heap.push(Reverse(Entry {
            at,
            seq: self.seq,
            ev,
        }));
        self.seq += 1;
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(T, E)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.ev))
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<T> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// SplitMix64: a tiny, seedable, platform-independent generator. The same
/// algorithm backs the vendored `rand` stub, so event schedules derived
/// from a seed are reproducible everywhere the workspace builds.
#[derive(Debug, Clone)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        DetRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && self.unit() < p
    }

    /// Uniform integer in `[lo, hi)`; `lo` when the range is empty.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        lo + self.next_u64() % (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_with_fifo_ties() {
        let mut q: EventQueue<u64, &str> = EventQueue::new();
        q.push(5, "c");
        q.push(1, "a");
        q.push(5, "d");
        q.push(3, "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![(1, "a"), (3, "b"), (5, "c"), (5, "d")]);
    }

    #[test]
    fn float_times_totally_ordered() {
        let mut q: EventQueue<f64, u32> = EventQueue::new();
        q.push(0.5, 1);
        q.push(0.25, 2);
        q.push(0.5, 3);
        assert_eq!(q.peek_time(), Some(0.25));
        assert_eq!(q.pop(), Some((0.25, 2)));
        assert_eq!(q.pop(), Some((0.5, 1)));
        assert_eq!(q.pop(), Some((0.5, 3)));
        assert!(q.is_empty());
    }

    #[test]
    fn rng_streams_reproduce() {
        let mut a = DetRng::new(99);
        let mut b = DetRng::new(99);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = DetRng::new(100);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(7);
        assert!(!r.chance(0.0));
        for _ in 0..100 {
            assert!(r.chance(1.0));
        }
    }

    #[test]
    fn range_bounds() {
        let mut r = DetRng::new(11);
        for _ in 0..1000 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
        assert_eq!(r.range(5, 5), 5);
    }
}
