//! Property-based tests for the discrete-event simulator.

use adm_simnet::{simulate, InitialDist, LinkModel, Schedule, SimConfig, Task};
use proptest::prelude::*;

fn tasks(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Task>> {
    prop::collection::vec(
        (1e-5f64..1e-2, 100u64..100_000).prop_map(|(c, b)| Task {
            cost_s: c,
            bytes: b,
        }),
        n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fundamental bounds: total/p <= makespan <= total + overheads, and
    /// busy time is conserved exactly.
    #[test]
    fn makespan_bounds(ts in tasks(1..120), p in 1usize..64) {
        let total: f64 = ts.iter().map(|t| t.cost_s).sum();
        let max_task = ts.iter().map(|t| t.cost_s).fold(0.0, f64::max);
        let cfg = SimConfig::default();
        let sim = simulate(p, &ts, InitialDist::RoundRobin, &cfg);
        prop_assert!(sim.makespan_s >= total / p as f64 - 1e-12);
        prop_assert!(sim.makespan_s >= max_task - 1e-12);
        // Never slower than fully serial plus all communication charged.
        prop_assert!(sim.makespan_s <= total + sim.comm_s + 1e-9);
        let busy: f64 = sim.busy_s.iter().sum();
        prop_assert!((busy - total).abs() < 1e-9 * total.max(1.0));
    }

    /// Strict monotonicity in rank count is NOT a property of the
    /// request-based protocol (the "never donate your only item" rule can
    /// strand a large task behind another at unlucky rank counts), but
    /// two weaker guarantees hold: no rank count is slower than serial,
    /// and for *uniform* tasks adding ranks never hurts beyond retry
    /// noise.
    #[test]
    fn parallel_never_slower_than_serial(ts in tasks(4..100)) {
        let cfg = SimConfig {
            link: LinkModel::ideal(),
            ..Default::default()
        };
        let serial = simulate(1, &ts, InitialDist::RoundRobin, &cfg).makespan_s;
        let slack = 16.0 * cfg.poll_s;
        for p in [2usize, 4, 8, 16] {
            let sim = simulate(p, &ts, InitialDist::RoundRobin, &cfg);
            prop_assert!(sim.makespan_s <= serial + slack, "p={p} slower than serial");
        }
    }

    #[test]
    fn monotone_in_ranks_uniform_tasks(n in 4usize..100, cost in 1e-4f64..1e-2) {
        let ts: Vec<Task> = (0..n).map(|_| Task { cost_s: cost, bytes: 100 }).collect();
        let cfg = SimConfig {
            link: LinkModel::ideal(),
            ..Default::default()
        };
        let slack = 16.0 * cfg.poll_s;
        let mut prev = f64::INFINITY;
        for p in [1usize, 2, 4, 8, 16] {
            let sim = simulate(p, &ts, InitialDist::RoundRobin, &cfg);
            prop_assert!(sim.makespan_s <= prev + slack, "p={p} worsened");
            prev = prev.min(sim.makespan_s);
        }
    }

    /// Stealing never loses or duplicates work: steals == successful
    /// transfers, and every task completes (asserted internally) with
    /// conserved busy time.
    #[test]
    fn steals_conserve_work(ts in tasks(2..80), p in 2usize..16) {
        let sim = simulate(p, &ts, InitialDist::AllOnRoot, &SimConfig::default());
        let busy: f64 = sim.busy_s.iter().sum();
        let total: f64 = ts.iter().map(|t| t.cost_s).sum();
        prop_assert!((busy - total).abs() < 1e-9 * total.max(1.0));
        prop_assert!(sim.steals <= ts.len() * 4, "implausible steal count");
    }

    /// Disabling the balancer on an all-on-root distribution serializes
    /// everything on rank 0.
    #[test]
    fn no_steal_serializes(ts in tasks(1..50), p in 2usize..8) {
        let cfg = SimConfig { steal: false, ..Default::default() };
        let sim = simulate(p, &ts, InitialDist::AllOnRoot, &cfg);
        let total: f64 = ts.iter().map(|t| t.cost_s).sum();
        prop_assert!((sim.makespan_s - total).abs() < 1e-9 * total.max(1.0));
        prop_assert_eq!(sim.steals, 0);
    }

    /// Schedule policy never changes the amount of work done, only its
    /// order (makespans may differ; busy totals may not).
    #[test]
    fn schedule_conserves_busy(ts in tasks(3..60), p in 1usize..8) {
        let total: f64 = ts.iter().map(|t| t.cost_s).sum();
        for schedule in [Schedule::LargestFirst, Schedule::Fifo] {
            let cfg = SimConfig { schedule, ..Default::default() };
            let sim = simulate(p, &ts, InitialDist::RoundRobin, &cfg);
            let busy: f64 = sim.busy_s.iter().sum();
            prop_assert!((busy - total).abs() < 1e-9 * total.max(1.0));
        }
    }
}
