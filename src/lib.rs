//! # adm2d — parallel 2-D unstructured anisotropic Delaunay mesh generation
//!
//! A from-scratch Rust reproduction of *"Parallel Two-Dimensional
//! Unstructured Anisotropic Delaunay Mesh Generation of Complex Domains
//! for Aerospace Applications"* (Pardue & Chernikov, ICPP 2016).
//!
//! This facade crate re-exports the workspace:
//!
//! * [`geom`] — exact-adaptive predicates, segments, AABB/Cohen–Sutherland,
//!   alternating digital tree, convex hulls;
//! * [`delaunay`] — divide-and-conquer Delaunay, constrained DT, Ruppert
//!   refinement, quality metrics, Triangle-format I/O;
//! * [`airfoil`] — NACA airfoils, the synthetic three-element high-lift
//!   configuration, PSLG domains;
//! * [`blayer`] — anisotropic boundary layers: growth functions, normal
//!   rays, cusp fans, hierarchical intersection resolution;
//! * [`partition`] — projection-based parallel domain decomposition;
//! * [`decouple`] — graded Delaunay decoupling of the inviscid region;
//! * [`mpirt`] — the MPI-like rank runtime with RMA window and dynamic
//!   load balancing;
//! * [`simnet`] — the discrete-event cluster simulator behind the
//!   strong-scaling study;
//! * [`solver`] — P1 finite elements and potential flow (the flow-solver
//!   substitute);
//! * [`trace`] — deterministic span tracing + metrics registry with a
//!   Chrome trace-event exporter;
//! * [`core`] — the push-button pipeline;
//! * [`serve`] — mesh generation as a service: the `admeshd` job server
//!   with content-addressed caching and single-flight dedup.
//!
//! ## Quickstart
//!
//! ```no_run
//! use adm2d::core::{generate, MeshConfig};
//!
//! let config = MeshConfig::naca0012(60);
//! let result = generate(&config);
//! println!("{} triangles", result.stats.total_triangles);
//! ```

pub use adm_airfoil as airfoil;
pub use adm_blayer as blayer;
pub use adm_core as core;
pub use adm_decouple as decouple;
pub use adm_delaunay as delaunay;
pub use adm_geom as geom;
pub use adm_kernel as kernel;
pub use adm_mpirt as mpirt;
pub use adm_partition as partition;
pub use adm_serve as serve;
pub use adm_simnet as simnet;
pub use adm_solver as solver;
pub use adm_trace as trace;
