//! `admesh` — the push-button command-line mesh generator.
//!
//! The paper's headline interface: "the user only needs to provide the
//! input configuration and wait for the output without any human
//! intervention."
//!
//! ```sh
//! admesh --naca 0012 --points 80 --out mesh.txt --svg mesh.svg
//! admesh --three-element --points 60 --ranks 4 --binary-out mesh.bin
//! admesh --naca 2412 --height 0.08 --growth 2e-4,1.3 --max-area 0.5
//! ```

use adm2d::blayer::{Geometric, GrowthSpec};
use adm2d::core::{
    adapt, generate, generate_parallel, mesh_pslg, mesh_pslg_parallel, mesh_pslg_sharded,
    AdaptOptions, AdaptResult, GradationLimited, GradedSizing, MeshConfig, PipelineResult,
    PslgMeshResult, SizingFn, UniformH,
};
use adm2d::delaunay::io::{write_ascii, write_binary, write_svg};
use adm2d::delaunay::quality::mesh_quality;
use adm2d::delaunay::RefineParams;
use std::fs::File;
use std::io::BufWriter;
use std::process::ExitCode;

const USAGE: &str = "\
admesh — parallel 2-D anisotropic Delaunay mesh generator (ICPP 2016 reproduction)

USAGE:
    admesh [OPTIONS]

GEOMETRY (choose one):
    --naca <DIGITS>        NACA 4-digit airfoil, e.g. --naca 0012 [default]
    --three-element        synthetic slat/main/flap high-lift configuration
    --poly <PATH>          general Triangle-format .poly PSLG: multiple parts,
                           holes, open chains; validated, refined against the
                           sizing function, no boundary layer
    --poly-airfoil <PATH>  treat each closed .poly loop as an airfoil body and
                           run the full boundary-layer pipeline

PSLG SIZING (with --poly):
    --sizing <H0,RATE>     edge length h = H0 + RATE * distance-to-boundary
                           (default: uniform h = bbox diagonal / 30)
    --gradation <G>        cap sizing growth at G per unit distance
                           (Lipschitz limit anchored at the input vertices)

ADAPTATION (airfoil pipelines only):
    --adapt <N>            run N solve -> estimate -> remesh cycles: each cycle
                           re-meshes against a Hessian metric recovered from a
                           potential-flow solve on the previous mesh; honors
                           --ranks per cycle (serial and parallel cycles are
                           byte-identical) and writes per-cycle shard sets
                           under --out-shards as cycle-NNN/
    --adapt-target <ERR>   stop early once the estimated total error is <= ERR

OPTIONS:
    --points <N>           surface points per airfoil side        [default: 80]
    --farfield <CHORDS>    far-field distance in chords           [default: 30]
    --height <H>           boundary-layer height (chord units)    [default: 0.05]
    --growth <H0,RATIO>    geometric growth law                   [default: 2e-4,1.25]
    --growth-law <LAW>     geometric | polynomial | capped        [default: geometric]
                           (polynomial: RATIO is the exponent;
                            capped: thickness capped at 20*H0)
    --max-area <A>         far-field triangle area cap            [default: 1.0]
    --subdomains <N>       target subdomains per stage            [default: 32]
    --ranks <N>            run on N parallel ranks (mpirt)        [default: sequential]
    --out <PATH>           write Triangle-format ASCII mesh
    --binary-out <PATH>    write compact binary mesh
    --out-shards <DIR>     distributed output: write per-subdomain shards plus
                           a digest manifest (mesh.admshards.json) into DIR;
                           reconstruct or verify offline with shard-cat
    --svg <PATH>           write an SVG rendering
    --trace-out <PATH>     write a Chrome trace-event JSON of the run
                           (open in about:tracing or Perfetto)
    --report               print a mesh-quality report (angle histogram)
    --quiet                suppress statistics
    --help                 show this help
";

struct Args {
    naca: String,
    three_element: bool,
    poly: Option<String>,
    poly_airfoil: Option<String>,
    sizing: Option<(f64, f64)>,
    gradation: Option<f64>,
    points: usize,
    farfield: f64,
    height: f64,
    growth: (f64, f64),
    growth_law: String,
    max_area: f64,
    subdomains: usize,
    adapt: Option<usize>,
    adapt_target: Option<f64>,
    ranks: Option<usize>,
    out: Option<String>,
    binary_out: Option<String>,
    out_shards: Option<String>,
    svg: Option<String>,
    trace_out: Option<String>,
    quiet: bool,
    report: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        naca: "0012".to_string(),
        three_element: false,
        poly: None,
        poly_airfoil: None,
        sizing: None,
        gradation: None,
        points: 80,
        farfield: 30.0,
        height: 0.05,
        growth: (2e-4, 1.25),
        growth_law: "geometric".to_string(),
        max_area: 1.0,
        subdomains: 32,
        adapt: None,
        adapt_target: None,
        ranks: None,
        out: None,
        binary_out: None,
        out_shards: None,
        svg: None,
        trace_out: None,
        quiet: false,
        report: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |argv: &[String], i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--naca" => args.naca = value(&argv, &mut i, "--naca")?,
            "--three-element" => args.three_element = true,
            "--poly" => args.poly = Some(value(&argv, &mut i, "--poly")?),
            "--poly-airfoil" => args.poly_airfoil = Some(value(&argv, &mut i, "--poly-airfoil")?),
            "--sizing" => {
                let v = value(&argv, &mut i, "--sizing")?;
                let parts: Vec<&str> = v.split(',').collect();
                if parts.len() != 2 {
                    return Err("--sizing expects H0,RATE".to_string());
                }
                args.sizing = Some((
                    parts[0].parse().map_err(|e| format!("--sizing h0: {e}"))?,
                    parts[1]
                        .parse()
                        .map_err(|e| format!("--sizing rate: {e}"))?,
                ));
            }
            "--gradation" => {
                args.gradation = Some(
                    value(&argv, &mut i, "--gradation")?
                        .parse()
                        .map_err(|e| format!("--gradation: {e}"))?,
                )
            }
            "--points" => {
                args.points = value(&argv, &mut i, "--points")?
                    .parse()
                    .map_err(|e| format!("--points: {e}"))?
            }
            "--farfield" => {
                args.farfield = value(&argv, &mut i, "--farfield")?
                    .parse()
                    .map_err(|e| format!("--farfield: {e}"))?
            }
            "--height" => {
                args.height = value(&argv, &mut i, "--height")?
                    .parse()
                    .map_err(|e| format!("--height: {e}"))?
            }
            "--growth" => {
                let v = value(&argv, &mut i, "--growth")?;
                let parts: Vec<&str> = v.split(',').collect();
                if parts.len() != 2 {
                    return Err("--growth expects H0,RATIO".to_string());
                }
                args.growth = (
                    parts[0].parse().map_err(|e| format!("--growth h0: {e}"))?,
                    parts[1]
                        .parse()
                        .map_err(|e| format!("--growth ratio: {e}"))?,
                );
            }
            "--growth-law" => args.growth_law = value(&argv, &mut i, "--growth-law")?,
            "--max-area" => {
                args.max_area = value(&argv, &mut i, "--max-area")?
                    .parse()
                    .map_err(|e| format!("--max-area: {e}"))?
            }
            "--subdomains" => {
                args.subdomains = value(&argv, &mut i, "--subdomains")?
                    .parse()
                    .map_err(|e| format!("--subdomains: {e}"))?
            }
            "--adapt" => {
                args.adapt = Some(
                    value(&argv, &mut i, "--adapt")?
                        .parse()
                        .map_err(|e| format!("--adapt: {e}"))?,
                )
            }
            "--adapt-target" => {
                args.adapt_target = Some(
                    value(&argv, &mut i, "--adapt-target")?
                        .parse()
                        .map_err(|e| format!("--adapt-target: {e}"))?,
                )
            }
            "--ranks" => {
                args.ranks = Some(
                    value(&argv, &mut i, "--ranks")?
                        .parse()
                        .map_err(|e| format!("--ranks: {e}"))?,
                )
            }
            "--out" => args.out = Some(value(&argv, &mut i, "--out")?),
            "--binary-out" => args.binary_out = Some(value(&argv, &mut i, "--binary-out")?),
            "--out-shards" => args.out_shards = Some(value(&argv, &mut i, "--out-shards")?),
            "--svg" => args.svg = Some(value(&argv, &mut i, "--svg")?),
            "--trace-out" => args.trace_out = Some(value(&argv, &mut i, "--trace-out")?),
            "--quiet" => args.quiet = true,
            "--report" => args.report = true,
            other => return Err(format!("unknown flag: {other}")),
        }
        i += 1;
    }
    Ok(args)
}

fn build_config(args: &Args) -> Result<MeshConfig, String> {
    let mut config = if let Some(path) = &args.poly_airfoil {
        let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
        let poly = adm2d::delaunay::read_poly(&mut std::io::BufReader::new(file))
            .map_err(|e| format!("{path}: {e}"))?;
        let loops = poly.loops().map_err(|e| format!("{path}: {e}"))?;
        if loops.is_empty() {
            return Err(format!("{path}: no closed loops"));
        }
        let loops = loops
            .into_iter()
            .enumerate()
            .map(|(i, l)| adm2d::airfoil::SurfaceLoop::new(format!("loop{i}"), l))
            .collect();
        MeshConfig::from_pslg(adm2d::airfoil::Pslg::with_farfield_margin(
            loops,
            args.farfield,
        ))
    } else if args.three_element {
        let pslg = adm2d::airfoil::three_element_highlift(&adm2d::airfoil::HighLiftParams {
            n_per_side: args.points,
            farfield_chords: args.farfield,
        });
        MeshConfig::from_pslg(pslg)
    } else {
        let foil = adm2d::airfoil::Naca4::from_digits(&args.naca)
            .ok_or_else(|| format!("invalid NACA code: {}", args.naca))?;
        let surface = foil.surface(args.points);
        let pslg = adm2d::airfoil::Pslg::with_farfield_margin(
            vec![adm2d::airfoil::SurfaceLoop::new(
                format!("naca{}", args.naca),
                surface,
            )],
            args.farfield,
        );
        MeshConfig::from_pslg(pslg)
    };
    config.growth = match args.growth_law.as_str() {
        "geometric" => Geometric::new(args.growth.0, args.growth.1).into(),
        "polynomial" => GrowthSpec::Polynomial {
            first_height: args.growth.0,
            exponent: args.growth.1,
        },
        "capped" => GrowthSpec::CappedGeometric {
            first_height: args.growth.0,
            ratio: args.growth.1,
            max_thickness: 20.0 * args.growth.0,
        },
        other => return Err(format!("unknown growth law: {other}")),
    };
    config.bl.height = args.height;
    config.sizing_max_area = args.max_area;
    config.bl_subdomains = args.subdomains;
    config.inviscid_subdomains = args.subdomains;
    Ok(config)
}

enum RunOutput {
    /// The airfoil boundary-layer pipeline.
    Pipeline(PipelineResult),
    /// The general PSLG front door.
    Pslg(PslgMeshResult),
    /// The solve -> estimate -> remesh adaptation loop.
    Adapt(AdaptResult),
}

impl RunOutput {
    fn mesh(&self) -> &adm2d::delaunay::Mesh {
        match self {
            RunOutput::Pipeline(r) => &r.mesh,
            RunOutput::Pslg(r) => &r.mesh,
            RunOutput::Adapt(r) => &r.mesh,
        }
    }
}

/// Meshes a general `.poly` domain: validate, refine against the user
/// sizing function, merge — serial and `--ranks N` runs are
/// byte-identical.
fn run_poly(args: &Args, path: &str) -> Result<PslgMeshResult, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let poly = adm2d::delaunay::read_poly(&mut std::io::BufReader::new(file))
        .map_err(|e| format!("{path}: {e}"))?;
    let pslg = poly.to_pslg();
    let bbox = pslg.bbox();
    let base: Box<dyn SizingFn> = match args.sizing {
        Some((h0, rate)) => {
            if h0 <= 0.0 || rate < 0.0 {
                return Err("--sizing needs H0 > 0 and RATE >= 0".to_string());
            }
            // Boundary = every vertex referenced by a constraint segment.
            let mut on_boundary = vec![false; pslg.points.len()];
            for &(a, b) in &pslg.segments {
                for v in [a, b] {
                    if let Some(f) = on_boundary.get_mut(v as usize) {
                        *f = true;
                    }
                }
            }
            let body: Vec<_> = pslg
                .points
                .iter()
                .zip(&on_boundary)
                .filter(|(_, &ob)| ob)
                .map(|(&p, _)| p)
                .collect();
            if body.is_empty() {
                return Err(format!("{path}: no constraint segments to grade from"));
            }
            Box::new(GradedSizing::new(&body, h0, rate, args.max_area, 256))
        }
        None => Box::new(UniformH(bbox.min.distance(bbox.max) / 30.0)),
    };
    let sized: Box<dyn SizingFn> = match args.gradation {
        Some(g) => {
            if g <= 0.0 {
                return Err("--gradation needs G > 0".to_string());
            }
            Box::new(GradationLimited::new(base, &pslg.points, g))
        }
        None => base,
    };
    let params = RefineParams::default();
    let out = match (&args.out_shards, args.ranks) {
        (Some(dir), ranks) => mesh_pslg_sharded(
            &pslg,
            &sized,
            &params,
            ranks.unwrap_or(1).max(1),
            std::path::Path::new(dir),
        )
        .map(|(result, manifest)| {
            if !args.quiet {
                eprintln!("wrote {} shard(s) to {dir}", manifest.shards.len());
            }
            result
        }),
        (None, Some(r)) if r > 1 => mesh_pslg_parallel(&pslg, &sized, &params, r),
        (None, _) => mesh_pslg(&pslg, &sized, &params),
    };
    out.map_err(|e| format!("{path}: {e}"))
}

fn run(args: &Args) -> Result<RunOutput, String> {
    if let Some(path) = &args.poly {
        if args.adapt.is_some() {
            return Err("--adapt applies to the airfoil pipelines, not --poly".to_string());
        }
        return Ok(RunOutput::Pslg(run_poly(args, &path.clone())?));
    }
    let mut config = build_config(args)?;
    config.shard_out = args.out_shards.as_ref().map(std::path::PathBuf::from);
    if let Some(cycles) = args.adapt {
        if cycles == 0 {
            return Err("--adapt needs at least one cycle".to_string());
        }
        let opts = AdaptOptions {
            cycles,
            target_error: args.adapt_target,
            ranks: args.ranks.unwrap_or(1).max(1),
            ..Default::default()
        };
        let result = adapt(&config, &opts);
        if let (Some(dir), false) = (&args.out_shards, args.quiet) {
            eprintln!("wrote per-cycle shards under {dir}/cycle-NNN");
        }
        return Ok(RunOutput::Adapt(result));
    }
    if args.adapt_target.is_some() {
        return Err("--adapt-target needs --adapt".to_string());
    }
    let result = match args.ranks {
        Some(r) if r > 1 => generate_parallel(&config, r),
        _ => generate(&config),
    };
    if let (Some(dir), false) = (&args.out_shards, args.quiet) {
        eprintln!("wrote shards to {dir}");
    }
    Ok(RunOutput::Pipeline(result))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match run(&args) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };
    if !args.quiet {
        let q = mesh_quality(result.mesh());
        match &result {
            RunOutput::Pipeline(r) => {
                let s = &r.stats;
                eprintln!("triangles        : {}", s.total_triangles);
                eprintln!("vertices         : {}", s.total_vertices);
                eprintln!(
                    "boundary layer   : {} points, {} triangles",
                    s.bl_points, s.bl_triangles
                );
                eprintln!("inviscid region  : {} triangles", s.inviscid_triangles);
                eprintln!("border splits    : {}", s.border_splits);
                eprintln!(
                    "angles           : {:.1} .. {:.1} degrees",
                    q.min_angle.to_degrees(),
                    q.max_angle.to_degrees()
                );
                eprintln!("wall time        : {:.2}s", s.total_s);
            }
            RunOutput::Adapt(r) => {
                eprintln!(
                    "adaptation       : {} cycle(s), final {} triangles / {} vertices",
                    r.cycles.len(),
                    r.stats.total_triangles,
                    r.stats.total_vertices
                );
                eprintln!(
                    "cycle  triangles      dofs    error-total  err*sqrt(dofs)  equidist  cg-iters"
                );
                for c in &r.cycles {
                    eprintln!(
                        "{:>5}  {:>9}  {:>8}  {:>11.5e}  {:>14.5e}  {:>8.2}  {:>8}",
                        c.cycle,
                        c.triangles,
                        c.dofs,
                        c.error_total,
                        c.error_per_dof,
                        c.equidistribution,
                        c.solve_iters
                    );
                }
                eprintln!(
                    "angles           : {:.1} .. {:.1} degrees",
                    q.min_angle.to_degrees(),
                    q.max_angle.to_degrees()
                );
            }
            RunOutput::Pslg(r) => {
                eprintln!("triangles        : {}", r.mesh.num_triangles());
                eprintln!("vertices         : {}", r.mesh.num_vertices());
                eprintln!("components       : {}", r.components);
                if !r.report.is_clean() {
                    eprintln!(
                        "input repairs    : {} merged points, {} degenerate + {} duplicate segments dropped",
                        r.report.merged_points,
                        r.report.dropped_degenerate,
                        r.report.dropped_duplicate
                    );
                }
                eprintln!(
                    "refinement       : {} segment splits, {} circumcenters",
                    r.refine_stats.segment_splits, r.refine_stats.circumcenters
                );
                eprintln!(
                    "angles           : {:.1} .. {:.1} degrees",
                    q.min_angle.to_degrees(),
                    q.max_angle.to_degrees()
                );
            }
        }
    }
    if args.report {
        let q = mesh_quality(result.mesh());
        eprintln!("--- quality report ---");
        eprintln!("triangles        : {}", q.triangles);
        eprintln!("total area       : {:.4}", q.total_area);
        eprintln!(
            "area range       : {:.3e} .. {:.3e}",
            q.min_area, q.max_area
        );
        eprintln!("max R/l ratio    : {:.3}", q.max_ratio);
        eprintln!("min-angle histogram (boundary-layer slivers are intentional):");
        let labels = ["0-10", "10-20", "20-30", "30-40", "40-50", "50-60"];
        let total: usize = q.angle_histogram.iter().sum();
        for (lab, &count) in labels.iter().zip(&q.angle_histogram) {
            let pct = 100.0 * count as f64 / total.max(1) as f64;
            let bar = "#".repeat((pct / 2.0).round() as usize);
            eprintln!("  {lab:>5} deg  {count:>8}  {pct:>5.1}%  {bar}");
        }
    }
    let write = |path: &str, f: &dyn Fn(&mut BufWriter<File>) -> std::io::Result<()>| {
        File::create(path)
            .map_err(|e| format!("{path}: {e}"))
            .and_then(|file| {
                let mut w = BufWriter::new(file);
                f(&mut w).map_err(|e| format!("{path}: {e}"))
            })
    };
    let mut status = ExitCode::SUCCESS;
    if let Some(p) = &args.out {
        if let Err(e) = write(p, &|w| write_ascii(result.mesh(), w)) {
            eprintln!("error: {e}");
            status = ExitCode::FAILURE;
        } else if !args.quiet {
            eprintln!("wrote {p}");
        }
    }
    if let Some(p) = &args.binary_out {
        if let Err(e) = write(p, &|w| write_binary(result.mesh(), w)) {
            eprintln!("error: {e}");
            status = ExitCode::FAILURE;
        } else if !args.quiet {
            eprintln!("wrote {p}");
        }
    }
    if let Some(p) = &args.svg {
        if let Err(e) = write(p, &|w| write_svg(result.mesh(), w, 1600.0)) {
            eprintln!("error: {e}");
            status = ExitCode::FAILURE;
        } else if !args.quiet {
            eprintln!("wrote {p}");
        }
    }
    if let Some(p) = &args.trace_out {
        let trace = match &result {
            RunOutput::Pipeline(r) => Some(&r.trace),
            RunOutput::Adapt(r) => Some(&r.trace),
            RunOutput::Pslg(_) => None,
        };
        if let Some(trace) = trace {
            let snap = trace.snapshot();
            if let Err(e) = write(p, &|w| adm2d::trace::chrome::write_chrome_trace(w, &snap)) {
                eprintln!("error: {e}");
                status = ExitCode::FAILURE;
            } else if !args.quiet {
                eprintln!("wrote {p}");
                for row in trace.phase_totals() {
                    eprintln!("  {:<24} x{:<5} {:>9.3}s", row.name, row.count, row.total_s);
                }
            }
        } else {
            eprintln!("note: --trace-out applies to the pipeline paths only, skipping");
        }
    }
    status
}
