//! `shard-cat` — offline consumer of distributed shard directories.
//!
//! Reads a manifest written by `admesh --out-shards DIR` (or any
//! pipeline run with `MeshConfig::shard_out` set), proves the shard set
//! is globally consistent — per-file digests plus the cross-shard
//! interface-frontier agreement check — and, unless `--verify-only`,
//! replays the canonical spliced merge to reconstruct the unified mesh,
//! identical to the one the pipeline would have produced in process.
//!
//! ```sh
//! shard-cat shards/ --out mesh.txt          # verify + reconstruct (ASCII)
//! shard-cat shards/ --binary-out mesh.bin   # verify + reconstruct (binary)
//! shard-cat shards/ --verify-only           # consistency check alone
//! ```
//!
//! Exits nonzero on any inconsistency, so it doubles as the shard
//! directory's fsck.

use adm2d::core::{read_manifest, reconstruct, verify_shards};
use adm2d::delaunay::io::{write_ascii, write_ascii_canonical, write_binary};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
shard-cat — verify and reconstruct distributed mesh shard directories

USAGE:
    shard-cat <DIR> [OPTIONS]

OPTIONS:
    --out <PATH>           write the reconstructed mesh as Triangle ASCII
    --binary-out <PATH>    write the reconstructed mesh as compact binary
    --canonical            write canonical (sorted) ASCII to stdout
    --verify-only          consistency check only, skip reconstruction
    --quiet                suppress the report
    --help                 show this help
";

struct Args {
    dir: PathBuf,
    out: Option<String>,
    binary_out: Option<String>,
    canonical: bool,
    verify_only: bool,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut dir: Option<PathBuf> = None;
    let mut out = None;
    let mut binary_out = None;
    let mut canonical = false;
    let mut verify_only = false;
    let mut quiet = false;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |argv: &[String], i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--out" => out = Some(value(&argv, &mut i, "--out")?),
            "--binary-out" => binary_out = Some(value(&argv, &mut i, "--binary-out")?),
            "--canonical" => canonical = true,
            "--verify-only" => verify_only = true,
            "--quiet" => quiet = true,
            flag if flag.starts_with('-') => return Err(format!("unknown flag: {flag}")),
            path => {
                if dir.replace(PathBuf::from(path)).is_some() {
                    return Err("exactly one shard directory expected".to_string());
                }
            }
        }
        i += 1;
    }
    Ok(Args {
        dir: dir.ok_or_else(|| "shard directory required".to_string())?,
        out,
        binary_out,
        canonical,
        verify_only,
        quiet,
    })
}

fn run(args: &Args) -> Result<(), String> {
    let dir = args.dir.as_path();
    let manifest = read_manifest(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let report = verify_shards(dir, &manifest).map_err(|e| format!("{}: {e}", dir.display()))?;
    if !args.quiet {
        eprintln!(
            "shards           : {} ({} triangles, {} vertices)",
            report.shard_count,
            manifest.shards.iter().map(|s| s.triangles).sum::<u64>(),
            manifest.shards.iter().map(|s| s.vertices).sum::<u64>()
        );
        eprintln!(
            "frontier         : {} entries, {} shared stamped vertices",
            report.frontier_entries, report.shared_stamped
        );
    }
    if !report.is_consistent() {
        for p in &report.problems {
            eprintln!("INCONSISTENT: {p}");
        }
        return Err(format!(
            "{} inconsistency(ies) found",
            report.problems.len()
        ));
    }
    if !args.quiet {
        eprintln!("consistency      : ok");
    }
    if args.verify_only {
        return Ok(());
    }
    let mesh = reconstruct(dir, &manifest).map_err(|e| format!("{}: {e}", dir.display()))?;
    if !args.quiet {
        eprintln!(
            "reconstructed    : {} triangles, {} vertices",
            mesh.num_triangles(),
            mesh.num_vertices()
        );
    }
    let write = |path: &str, f: &dyn Fn(&mut std::fs::File) -> std::io::Result<()>| {
        std::fs::File::create(path)
            .map_err(|e| format!("{path}: {e}"))
            .and_then(|mut file| f(&mut file).map_err(|e| format!("{path}: {e}")))
    };
    if let Some(p) = &args.out {
        write(p, &|w| write_ascii(&mesh, w))?;
        if !args.quiet {
            eprintln!("wrote {p}");
        }
    }
    if let Some(p) = &args.binary_out {
        write(p, &|w| write_binary(&mesh, w))?;
        if !args.quiet {
            eprintln!("wrote {p}");
        }
    }
    if args.canonical {
        let stdout = std::io::stdout();
        let mut lock = stdout.lock();
        write_ascii_canonical(&mesh, &mut lock).map_err(|e| format!("stdout: {e}"))?;
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
