//! `serve-replay` — load-replay and chaos client for `admeshd`.
//!
//! Fires a seeded mixed workload (NACA / high-lift / general PSLG) at
//! a running server over `ADMSERVE/1`, measures throughput and latency
//! percentiles, and cross-checks the content-addressed contract: every
//! response for the same key must carry the same sha256 digest. Chaos
//! mode adds slow clients (dribbled request bytes), mid-request
//! disconnects, and duplicate submissions — all drawn from the seed.
//!
//! ```sh
//! serve-replay --connect 127.0.0.1:7777 --requests 500 --seed 7
//! serve-replay --connect 127.0.0.1:7777 --requests 200 --chaos --threads 8
//! serve-replay --connect 127.0.0.1:7777 --assert-hit-rate 0.9 --json
//! serve-replay --connect 127.0.0.1:7777 --shutdown
//! ```

use std::collections::BTreeMap;
use std::io::Write as _;
use std::net::{SocketAddr, TcpStream};
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use adm2d::serve::{canonical_request, workload, Client, Rng, WireResponse, PROTO};

const USAGE: &str = "\
serve-replay — workload replay and chaos client for admeshd

USAGE:
    serve-replay --connect <ADDR> [OPTIONS]

OPTIONS:
    --connect <ADDR>         server address, e.g. 127.0.0.1:7777  (required)
    --requests <N>           requests to fire               [default: 200]
    --distinct <N>           distinct request shapes (<= 8) [default: 4]
    --seed <N>               workload / chaos seed          [default: 1]
    --threads <N>            client threads                 [default: 4]
    --chaos                  enable slow clients, mid-request disconnects,
                             and duplicate submissions (seeded)
    --assert-hit-rate <F>    exit nonzero unless the server-side cache hit
                             rate over this run is >= F (0..=1)
    --assert-p99-ms <N>      exit nonzero unless client-observed p99 <= N ms
    --json                   print the run report as JSON
    --shutdown               send SHUTDOWN after the run (or alone)
    --help                   show this help
";

struct Args {
    connect: Option<String>,
    requests: usize,
    distinct: usize,
    seed: u64,
    threads: usize,
    chaos: bool,
    assert_hit_rate: Option<f64>,
    assert_p99_ms: Option<u64>,
    json: bool,
    shutdown: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        connect: None,
        requests: 200,
        distinct: 4,
        seed: 1,
        threads: 4,
        chaos: false,
        assert_hit_rate: None,
        assert_p99_ms: None,
        json: false,
        shutdown: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |argv: &[String], i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    let num = |s: String, flag: &str| -> Result<u64, String> {
        s.parse().map_err(|_| format!("{flag} needs a number"))
    };
    while i < argv.len() {
        let flag = argv[i].as_str();
        match flag {
            "--help" | "-h" => return Err("help".to_string()),
            "--connect" => args.connect = Some(value(&argv, &mut i, flag)?),
            "--requests" => args.requests = num(value(&argv, &mut i, flag)?, flag)? as usize,
            "--distinct" => args.distinct = num(value(&argv, &mut i, flag)?, flag)? as usize,
            "--seed" => args.seed = num(value(&argv, &mut i, flag)?, flag)?,
            "--threads" => args.threads = (num(value(&argv, &mut i, flag)?, flag)? as usize).max(1),
            "--chaos" => args.chaos = true,
            "--assert-hit-rate" => {
                args.assert_hit_rate = Some(
                    value(&argv, &mut i, flag)?
                        .parse()
                        .map_err(|_| format!("{flag} needs a fraction"))?,
                );
            }
            "--assert-p99-ms" => {
                args.assert_p99_ms = Some(num(value(&argv, &mut i, flag)?, flag)?);
            }
            "--json" => args.json = true,
            "--shutdown" => args.shutdown = true,
            other => return Err(format!("unknown flag {other}")),
        }
        i += 1;
    }
    if args.connect.is_none() {
        return Err("--connect is required".to_string());
    }
    Ok(args)
}

#[derive(Default)]
struct Tally {
    ok: usize,
    busy: usize,
    errs: usize,
    disconnected: usize,
    latencies_us: Vec<u64>,
    digests: BTreeMap<String, String>,
    mismatches: usize,
}

fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[((sorted.len() - 1) as f64 * q).round() as usize]
}

/// Sends one request the slow way: the command line, then the payload
/// dribbled in small chunks. Exercises the server's read-timeout and
/// partial-read paths without ever being *so* slow that it trips them.
fn slow_mesh(addr: SocketAddr, payload: &str, rng: &mut Rng) -> std::io::Result<WireResponse> {
    let mut stream = TcpStream::connect(addr)?;
    // Defeat Nagle so each dribbled chunk really hits the wire alone.
    stream.set_nodelay(true)?;
    writeln!(stream, "{PROTO} MESH 1 {}", payload.len())?;
    let bytes = payload.as_bytes();
    let mut at = 0;
    while at < bytes.len() {
        let chunk = (rng.below(512) + 64).min(bytes.len() - at);
        stream.write_all(&bytes[at..at + chunk])?;
        stream.flush()?;
        at += chunk;
        std::thread::sleep(Duration::from_millis(rng.below(4) as u64));
    }
    let mut r = std::io::BufReader::new(stream);
    adm2d::serve::wire::read_response(&mut r)
}

/// Connects, sends the command line and half the payload, and hangs
/// up. The server must shrug (abort the connection) without admitting
/// a half request.
fn disconnect_mid_request(addr: SocketAddr, payload: &str) -> std::io::Result<()> {
    let mut stream = TcpStream::connect(addr)?;
    writeln!(stream, "{PROTO} MESH 1 {}", payload.len())?;
    let half = payload.len() / 2;
    stream.write_all(&payload.as_bytes()[..half])?;
    stream.flush()?;
    drop(stream); // RST/EOF mid-payload
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            if e == "help" {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let addr: SocketAddr = match args.connect.as_deref().unwrap().parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: bad --connect address: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Fail fast if the server is not up — this also makes
    // `--requests 0` a usable readiness probe for CI boot loops.
    if let Err(e) = Client::connect(addr).and_then(|mut c| c.ping()) {
        eprintln!("error: server not reachable at {addr}: {e}");
        return ExitCode::FAILURE;
    }

    let reqs = workload(args.seed, args.requests, args.distinct.clamp(1, 8));
    let payloads: Vec<String> = reqs
        .iter()
        .map(|c| canonical_request(c).expect("workload configs are cacheable"))
        .collect();

    let tally = Mutex::new(Tally::default());
    let next = AtomicUsize::new(0);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..args.threads {
            let payloads = &payloads;
            let tally = &tally;
            let next = &next;
            let mut rng = Rng::new(args.seed ^ (t as u64).wrapping_mul(0x9e37));
            scope.spawn(move || {
                let mut client = match Client::connect(addr) {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("error: connect: {e}");
                        return;
                    }
                };
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= payloads.len() {
                        return;
                    }
                    // Chaos: some requests go through hostile clients.
                    if args.chaos {
                        match rng.below(10) {
                            0 => {
                                // slow dribbling client on its own conn
                                let q0 = Instant::now();
                                let out = slow_mesh(addr, &payloads[i], &mut rng);
                                record(tally, out, q0.elapsed());
                                continue;
                            }
                            1 => {
                                let _ = disconnect_mid_request(addr, &payloads[i]);
                                tally.lock().unwrap().disconnected += 1;
                                continue;
                            }
                            2 => {
                                // duplicate submission back-to-back
                                let q0 = Instant::now();
                                let out = client.mesh_raw(0, &payloads[i]);
                                record(tally, out, q0.elapsed());
                                let q1 = Instant::now();
                                let out = client.mesh_raw(0, &payloads[i]);
                                record(tally, out, q1.elapsed());
                                continue;
                            }
                            _ => {}
                        }
                    }
                    let q0 = Instant::now();
                    let out = client.mesh_raw((i % 2) as u8, &payloads[i]);
                    record(tally, out, q0.elapsed());
                }
            });
        }
    });
    let wall = t0.elapsed();

    let mut tally = tally.into_inner().unwrap();
    tally.latencies_us.sort_unstable();
    let p50 = quantile(&tally.latencies_us, 0.50);
    let p90 = quantile(&tally.latencies_us, 0.90);
    let p99 = quantile(&tally.latencies_us, 0.99);
    let rps = tally.ok as f64 / wall.as_secs_f64().max(1e-9);

    // Server-side hit rate over this run, from STATS deltas… the
    // replay owns the whole server lifetime in CI, so totals suffice.
    let hit_rate = match Client::connect(addr).and_then(|mut c| c.stats()) {
        Ok(json) => hit_rate_from_stats(&json),
        Err(_) => None,
    };

    if args.shutdown {
        match Client::connect(addr).and_then(|mut c| c.shutdown()) {
            Ok(()) => {}
            Err(e) => eprintln!("warning: shutdown: {e}"),
        }
    }

    if args.json {
        println!(
            "{{\"requests\":{},\"ok\":{},\"busy\":{},\"errors\":{},\"disconnected\":{},\"mismatches\":{},\"wall_s\":{:.6},\"rps\":{:.3},\"p50_us\":{p50},\"p90_us\":{p90},\"p99_us\":{p99},\"hit_rate\":{}}}",
            args.requests,
            tally.ok,
            tally.busy,
            tally.errs,
            tally.disconnected,
            tally.mismatches,
            wall.as_secs_f64(),
            rps,
            hit_rate.map_or("null".to_string(), |h| format!("{h:.4}")),
        );
    } else {
        println!(
            "replayed {} requests in {:.3}s: {} ok ({:.1} req/s), {} busy, {} errors, {} chaos-disconnects",
            args.requests,
            wall.as_secs_f64(),
            tally.ok,
            rps,
            tally.busy,
            tally.errs,
            tally.disconnected
        );
        println!("latency p50 {p50}us  p90 {p90}us  p99 {p99}us");
        if let Some(h) = hit_rate {
            println!("server cache hit rate {:.1}%", h * 100.0);
        }
    }

    if tally.mismatches > 0 {
        eprintln!("error: {} digest mismatches", tally.mismatches);
        return ExitCode::FAILURE;
    }
    if let Some(want) = args.assert_hit_rate {
        match hit_rate {
            Some(h) if h >= want => {}
            Some(h) => {
                eprintln!("error: hit rate {h:.4} < required {want:.4}");
                return ExitCode::FAILURE;
            }
            None => {
                eprintln!("error: --assert-hit-rate set but stats unavailable");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(cap_ms) = args.assert_p99_ms {
        if p99 > cap_ms * 1000 {
            eprintln!("error: p99 {}us exceeds {}ms", p99, cap_ms);
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn record(tally: &Mutex<Tally>, out: std::io::Result<WireResponse>, dt: Duration) {
    let mut t = tally.lock().unwrap();
    match out {
        Ok(WireResponse::Ok { key, digest, .. }) => {
            t.ok += 1;
            t.latencies_us.push(dt.as_micros() as u64);
            match t.digests.get(&key) {
                Some(prev) if *prev != digest => t.mismatches += 1,
                Some(_) => {}
                None => {
                    t.digests.insert(key, digest);
                }
            }
        }
        Ok(WireResponse::Busy { .. }) => t.busy += 1,
        Ok(WireResponse::Err(_)) | Err(_) => t.errs += 1,
    }
}

/// Pulls `serve.*` counters out of the stats JSON and computes the
/// cache hit rate (mem + disk + coalesced over all answered work).
fn hit_rate_from_stats(json: &str) -> Option<f64> {
    let counter = |name: &str| -> u64 {
        json.find(&format!("\"{name}\":"))
            .and_then(|at| {
                let rest = &json[at + name.len() + 3..];
                let end = rest.find(|c: char| !c.is_ascii_digit())?;
                rest[..end].parse().ok()
            })
            .unwrap_or(0)
    };
    let hits = counter("serve.hits_mem") + counter("serve.hits_disk") + counter("serve.coalesced");
    let total = hits + counter("serve.mesh_jobs");
    if total == 0 {
        return None;
    }
    Some(hits as f64 / total as f64)
}
