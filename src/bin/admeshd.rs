//! `admeshd` — the mesh-generation job server.
//!
//! Boots an `ADMSERVE/1` TCP endpoint over the job server: bounded
//! admission, single-flight dedup, a shared worker pool, and the
//! two-level content-addressed cache (memory LRU + shard sets on
//! disk). Runs until a client sends `SHUTDOWN`, then optionally
//! exports the server's Chrome trace.
//!
//! ```sh
//! admeshd --port 7777 --workers 4 --cache-dir /var/tmp/admcache
//! admeshd --port 0 --queue-cap 128 --trace-out serve_trace.json
//! ```

use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use adm2d::serve::{serve, NetOptions, Server, ServerConfig};
use adm2d::trace::chrome::write_chrome_trace;

const USAGE: &str = "\
admeshd — mesh-generation job server (ADMSERVE/1 over TCP)

USAGE:
    admeshd [OPTIONS]

OPTIONS:
    --host <ADDR>          bind address                   [default: 127.0.0.1]
    --port <N>             bind port (0 = ephemeral)      [default: 7777]
    --workers <N>          mesh executor threads          [default: 2]
    --pool-threads <N>     shared mesh pool width         [default: workers]
    --queue-cap <N>        admission queue bound; excess
                           requests get a typed BUSY      [default: 64]
    --mem-cache-mb <N>     memory LRU budget in MiB       [default: 256]
    --cache-dir <DIR>      disk cache root (shard sets); omit to disable
    --max-conns <N>        concurrent connection cap      [default: 64]
    --read-timeout-s <N>   per-connection read timeout    [default: 30]
    --trace-out <PATH>     write a Chrome trace-event JSON on shutdown
    --help                 show this help

The server prints `listening on <addr>` once ready. Stop it with the
SHUTDOWN command (`serve-replay --shutdown` or any protocol client).
";

struct Args {
    host: String,
    port: u16,
    workers: usize,
    pool_threads: Option<usize>,
    queue_cap: usize,
    mem_cache_mb: usize,
    cache_dir: Option<String>,
    max_conns: usize,
    read_timeout_s: u64,
    trace_out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        host: "127.0.0.1".to_string(),
        port: 7777,
        workers: 2,
        pool_threads: None,
        queue_cap: 64,
        mem_cache_mb: 256,
        cache_dir: None,
        max_conns: 64,
        read_timeout_s: 30,
        trace_out: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |argv: &[String], i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < argv.len() {
        let flag = argv[i].as_str();
        match flag {
            "--help" | "-h" => return Err("help".to_string()),
            "--host" => args.host = value(&argv, &mut i, flag)?,
            "--port" => {
                args.port = value(&argv, &mut i, flag)?
                    .parse()
                    .map_err(|_| "--port needs a number".to_string())?;
            }
            "--workers" => {
                args.workers = value(&argv, &mut i, flag)?
                    .parse()
                    .map_err(|_| "--workers needs a number".to_string())?;
            }
            "--pool-threads" => {
                args.pool_threads = Some(
                    value(&argv, &mut i, flag)?
                        .parse()
                        .map_err(|_| "--pool-threads needs a number".to_string())?,
                );
            }
            "--queue-cap" => {
                args.queue_cap = value(&argv, &mut i, flag)?
                    .parse()
                    .map_err(|_| "--queue-cap needs a number".to_string())?;
            }
            "--mem-cache-mb" => {
                args.mem_cache_mb = value(&argv, &mut i, flag)?
                    .parse()
                    .map_err(|_| "--mem-cache-mb needs a number".to_string())?;
            }
            "--cache-dir" => args.cache_dir = Some(value(&argv, &mut i, flag)?),
            "--max-conns" => {
                args.max_conns = value(&argv, &mut i, flag)?
                    .parse()
                    .map_err(|_| "--max-conns needs a number".to_string())?;
            }
            "--read-timeout-s" => {
                args.read_timeout_s = value(&argv, &mut i, flag)?
                    .parse()
                    .map_err(|_| "--read-timeout-s needs a number".to_string())?;
            }
            "--trace-out" => args.trace_out = Some(value(&argv, &mut i, flag)?),
            other => return Err(format!("unknown flag {other}")),
        }
        i += 1;
    }
    if args.workers == 0 {
        return Err("--workers must be >= 1 for a network server".to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            if e == "help" {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let server = match Server::new(ServerConfig {
        workers: args.workers,
        pool_threads: args.pool_threads.unwrap_or(args.workers),
        queue_cap: args.queue_cap,
        mem_cache_bytes: args.mem_cache_mb << 20,
        cache_dir: args.cache_dir.clone().map(Into::into),
    }) {
        Ok(s) => Arc::new(s),
        Err(e) => {
            eprintln!("error: failed to start server: {e}");
            return ExitCode::FAILURE;
        }
    };

    let listener = match TcpListener::bind((args.host.as_str(), args.port)) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: cannot bind {}:{}: {e}", args.host, args.port);
            return ExitCode::FAILURE;
        }
    };
    match listener.local_addr() {
        Ok(addr) => println!("listening on {addr}"),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }

    let opts = NetOptions {
        max_conns: args.max_conns,
        read_timeout: (args.read_timeout_s > 0).then(|| Duration::from_secs(args.read_timeout_s)),
    };
    if let Err(e) = serve(listener, server.clone(), opts) {
        eprintln!("error: serve loop failed: {e}");
        return ExitCode::FAILURE;
    }
    server.shutdown();

    if let Some(path) = &args.trace_out {
        let snap = server.tracer().snapshot();
        match std::fs::File::create(path) {
            Ok(f) => {
                if let Err(e) = write_chrome_trace(std::io::BufWriter::new(f), &snap) {
                    eprintln!("error: writing trace {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("trace written to {path}");
            }
            Err(e) => {
                eprintln!("error: creating {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
